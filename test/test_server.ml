(* The serve stack, unit-tested in process: wire framing survives
   arbitrary slicing and rejects corruption; a daemon running on its own
   domain serves concurrent sessions whose on-disk profiles are
   byte-identical to the serial reference; injected wire faults, raw
   protocol garbage and position gaps kill exactly one session; shedding
   and daemon restarts are absorbed by the client's retry loop. *)

module Wire = Ormp_server.Wire
module Stats = Ormp_server.Stats
module Net_io = Ormp_server.Net_io
module Daemon = Ormp_server.Daemon
module Client = Ormp_server.Client
module Net_fault = Ormp_workloads.Faults.Net
module Batch = Ormp_trace.Batch
module Event = Ormp_trace.Event
module Spans = Ormp_telemetry.Spans
module J = Ormp_util.Json
module Sexp = Ormp_util.Sexp
module Crc32 = Ormp_util.Crc32

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let tmpdir () =
  Filename.temp_file "ormp_server" "" |> fun f ->
  Sys.remove f;
  Unix.mkdir f 0o755;
  f

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let read_file path = In_channel.with_open_bin path In_channel.input_all

let profile_bytes dir =
  ( read_file (Filename.concat dir "whomp.profile"),
    read_file (Filename.concat dir "rasg.profile"),
    read_file (Filename.concat dir "leap.profile") )

(* One event stream shared by every test; linked_list is small and hits
   alloc, access and free frames. *)
let events =
  match Client.generate ~workload:"linked_list" ~seed:1 with
  | Ok (evs, _) -> evs
  | Error m -> failwith m

let reference_dir =
  lazy
    (let dir = tmpdir () in
     Client.reference ~dir ~events;
     at_exit (fun () -> try rm_rf dir with _ -> ());
     dir)

let check_matches_reference what dir =
  let rw, rr, rl = profile_bytes (Lazy.force reference_dir) in
  let sw, sr, sl = profile_bytes dir in
  check_bool (what ^ ": whomp bytes") true (rw = sw);
  check_bool (what ^ ": rasg bytes") true (rr = sr);
  check_bool (what ^ ": leap bytes") true (rl = sl)

(* --- wire framing ------------------------------------------------------ *)

let sample_chunk () =
  let c =
    {
      Batch.instr = Array.init 7 (fun i -> i * 3);
      addr = Array.init 7 (fun i -> 0x1000 + (i * 8));
      size = Array.make 7 8;
      store = Array.init 7 (fun i -> i land 1);
      len = 5;
    }
  in
  c

let eq_msg a b =
  match (a, b) with
  | Wire.Batch { start = s1; chunk = c1 }, Wire.Batch { start = s2; chunk = c2 } ->
    s1 = s2 && c1.Batch.len = c2.Batch.len
    && Array.for_all Fun.id
         (Array.init c1.Batch.len (fun i ->
              c1.Batch.instr.(i) = c2.Batch.instr.(i)
              && c1.Batch.addr.(i) = c2.Batch.addr.(i)
              && c1.Batch.size.(i) = c2.Batch.size.(i)
              && c1.Batch.store.(i) = c2.Batch.store.(i)))
  | a, b -> a = b

let roundtrip_msgs () =
  [
    Wire.Hello { token = "tok-1"; workload = "linked_list"; ack_every = 4 };
    Wire.Hello_ok { fresh = true; complete = false; position = 0 };
    Wire.Hello_ok { fresh = false; complete = true; position = 6240 };
    (* 2.5 has high exponent bits: a regression guard for float transport *)
    Wire.Shed { retry_after_s = 2.5; reason = "draining for shutdown" };
    Wire.Err "position gap";
    Wire.Batch { start = 12345; chunk = sample_chunk () };
    Wire.Ev
      { position = 7; event = Event.Alloc { site = 3; addr = 0x2000; size = 64; type_name = None } };
    Wire.Ev { position = 9; event = Event.Free { addr = 0x2000; site = Some 4 } };
    Wire.Finish { position = 6240 };
    Wire.Finish_ok { position = 6240; collected = 6000; wild = 0 };
    Wire.Ack { position = 512 };
    Wire.Ping;
    Wire.Pong;
  ]

(* Feed the encoded stream in [slice]-byte pieces; every message must
   come back out, regardless of where the frame boundaries fall. *)
let decode_sliced slice encoded =
  let dec = Wire.decoder () in
  let out = ref [] in
  let buf = Bytes.of_string encoded in
  let n = Bytes.length buf in
  let drain () =
    let continue = ref true in
    while !continue do
      match Wire.next dec with
      | Ok (Some m) -> out := m :: !out
      | Ok None -> continue := false
      | Error e -> failwith ("decode error: " ^ e)
    done
  in
  let i = ref 0 in
  while !i < n do
    let k = min slice (n - !i) in
    Wire.feed dec buf !i k;
    drain ();
    i := !i + k
  done;
  List.rev !out

let test_wire_roundtrip () =
  let msgs = roundtrip_msgs () in
  let encoded = String.concat "" (List.map Wire.encode msgs) in
  List.iter
    (fun slice ->
      let got = decode_sliced slice encoded in
      check_int (Printf.sprintf "count at slice %d" slice) (List.length msgs)
        (List.length got);
      List.iter2
        (fun want have ->
          check_bool (Printf.sprintf "msg equal at slice %d" slice) true (eq_msg want have))
        msgs got)
    [ 1; 2; 3; 7; 64; String.length encoded ]

let test_wire_crc_rejects_corruption () =
  let s = Wire.encode (Wire.Hello { token = "t"; workload = "w"; ack_every = 1 }) in
  (* flip one payload byte; the CRC trailer no longer matches *)
  let b = Bytes.of_string s in
  Bytes.set b 6 (Char.chr (Char.code (Bytes.get b 6) lxor 0xff));
  let dec = Wire.decoder () in
  Wire.feed dec b 0 (Bytes.length b);
  (match Wire.next dec with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupted frame was accepted");
  (* an insane length prefix is rejected before any buffering happens *)
  let dec2 = Wire.decoder () in
  let huge = Bytes.make 4 '\xff' in
  Wire.feed dec2 huge 0 4;
  match Wire.next dec2 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized length prefix accepted"

let test_wire_partial_frame_buffers () =
  let s = Wire.encode Wire.Ping in
  let dec = Wire.decoder () in
  Wire.feed dec (Bytes.of_string s) 0 (String.length s - 1);
  (match Wire.next dec with
  | Ok None -> ()
  | _ -> Alcotest.fail "partial frame should need more bytes");
  check_bool "partial frame is visibly buffered" true (Wire.buffered dec > 0);
  Wire.feed dec (Bytes.of_string s) (String.length s - 1) 1;
  (match Wire.next dec with
  | Ok (Some Wire.Ping) -> ()
  | _ -> Alcotest.fail "completed frame should decode");
  check_int "drained" 0 (Wire.buffered dec)

(* --- stats frame codec --------------------------------------------------- *)

let sample_stats () =
  {
    Stats.s_wall_s = 12.5;
    s_events_per_sec = 125000.0;
    s_pool_occupancy = 0.25;
    s_sessions_live = 1;
    s_sessions_started = 3;
    s_sessions_resumed = 1;
    s_sheds = 2;
    s_protocol_errors = 1;
    s_deadline_kills = 0;
    s_events_total = 6240;
    s_wal_bytes = 73000;
    s_out_backlog = 0;
    s_out_backlog_hw = 4096;
    s_grammar_symbols = 512;
    s_grammar_budget = 0;
    s_flight_events = 9;
    s_flight_dropped = 0;
    s_flight_dumps = 2;
    s_rows_truncated = false;
    s_rows =
      [
        {
          Stats.r_token = "tok-1";
          r_workload = "linked_list";
          r_position = 6240;
          r_journal_bytes = 73000;
          r_journal_lag = 0;
          r_events_per_sec = 125000.0;
          (* 2.5 again stresses the high exponent bits in transit *)
          r_ack_p50_ms = 2.5;
          r_ack_p99_ms = 9.75;
          r_ring_occupancy = 0.125;
        };
      ];
    s_counters = [ ("serve.stats_requests", 4) ];
    s_gauges = [ ("pool.occupancy", 0.25) ];
    s_hists =
      [
        ( "serve.ack_flush_ns",
          {
            Stats.count = 4;
            sum = 1500.0;
            min = 100.0;
            max = 800.0;
            p50 = 300.0;
            p90 = 700.0;
            p99 = 800.0;
          } );
      ];
  }

let decode_one s =
  let dec = Wire.decoder () in
  Wire.feed dec (Bytes.of_string s) 0 (String.length s);
  Wire.next dec

(* Byte-for-byte re-encoding sidesteps float-equality pitfalls: if the
   decoded snapshot encodes to the exact frame it came from, every field
   survived transit. *)
let gen_stats =
  let open QCheck.Gen in
  let str = string_size ~gen:printable (int_bound 12) in
  let fin = float_bound_inclusive 1.0e9 in
  let nat = int_bound 1_000_000 in
  let row =
    pair (pair str str) (pair (triple nat nat nat) (quad fin fin fin fin))
    >|= fun ( (r_token, r_workload),
              ( (r_position, r_journal_bytes, r_journal_lag),
                (r_events_per_sec, r_ack_p50_ms, r_ack_p99_ms, r_ring_occupancy) ) ) ->
    {
      Stats.r_token;
      r_workload;
      r_position;
      r_journal_bytes;
      r_journal_lag;
      r_events_per_sec;
      r_ack_p50_ms;
      r_ack_p99_ms;
      r_ring_occupancy;
    }
  in
  let hist =
    pair nat (quad fin fin fin fin) >|= fun (count, (sum, mn, mx, q)) ->
    { Stats.count; sum; min = mn; max = mx; p50 = q; p90 = q *. 2.0; p99 = q *. 3.0 }
  in
  pair
    (pair (list_size (int_bound 5) row) (triple nat nat nat))
    (pair
       (pair (list_size (int_bound 4) (pair str nat)) (list_size (int_bound 4) (pair str fin)))
       (pair (list_size (int_bound 3) (pair str hist)) (triple fin fin fin)))
  >|= fun ( (s_rows, (a, b, c)),
            ((s_counters, s_gauges), (s_hists, (s_wall_s, s_events_per_sec, s_pool_occupancy)))
          ) ->
  {
    Stats.s_wall_s;
    s_events_per_sec;
    s_pool_occupancy;
    s_sessions_live = List.length s_rows;
    s_sessions_started = a;
    s_sessions_resumed = b;
    s_sheds = c;
    s_protocol_errors = a land 15;
    s_deadline_kills = b land 15;
    s_events_total = a + b;
    s_wal_bytes = c;
    s_out_backlog = a land 1023;
    s_out_backlog_hw = a;
    s_grammar_symbols = b;
    s_grammar_budget = c;
    s_flight_events = a land 255;
    s_flight_dropped = b land 255;
    s_flight_dumps = c land 63;
    s_rows_truncated = false;
    s_rows;
    s_counters;
    s_gauges;
    s_hists;
  }

let prop_stats_roundtrip =
  QCheck.Test.make ~name:"stats frames re-encode byte-identically" ~count:60
    (QCheck.make gen_stats) (fun s ->
      let encoded = Wire.encode (Wire.Stats s) in
      match decode_one encoded with
      | Ok (Some (Wire.Stats s')) -> Wire.encode (Wire.Stats s') = encoded
      | _ -> false)

let test_stats_version_rejected () =
  let s = Wire.encode (Wire.Stats (sample_stats ())) in
  let b = Bytes.of_string s in
  (* frame = u32 len | payload | u32 crc; payload byte 1 is the layout
     version, so frame byte 5 — flip it and reseal the CRC so only the
     version check can object *)
  Bytes.set b 5 '\x63';
  let len = Bytes.length b in
  let payload = Bytes.sub_string b 4 (len - 8) in
  Bytes.set_int32_be b (len - 4) (Int32.of_int (Crc32.string payload));
  match decode_one (Bytes.to_string b) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown stats version was accepted"

let test_stats_corruption_rejected () =
  let s = Wire.encode (Wire.Stats (sample_stats ())) in
  (* one flipped payload byte: the CRC trailer no longer matches *)
  let b = Bytes.of_string s in
  Bytes.set b 20 (Char.chr (Char.code (Bytes.get b 20) lxor 0x55));
  (match decode_one (Bytes.to_string b) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupt stats frame was accepted");
  (* truncation is not corruption: the decoder just waits for the rest *)
  let dec = Wire.decoder () in
  Wire.feed dec (Bytes.of_string s) 0 (String.length s - 5);
  (match Wire.next dec with
  | Ok None -> ()
  | _ -> Alcotest.fail "truncated stats frame should buffer, not decode");
  (* a CRC-valid frame whose table count lies past the payload length is
     rejected before any array gets allocated *)
  let empty =
    { (sample_stats ()) with Stats.s_rows = []; s_counters = []; s_gauges = []; s_hists = [] }
  in
  let b = Bytes.of_string (Wire.encode (Wire.Stats empty)) in
  (* ncounters lives right after tag+version+3 floats+15 i64s+flag+nrows:
     payload offset 151, frame offset 155 *)
  Bytes.set_int32_be b 155 0x00FFFFFFl;
  let len = Bytes.length b in
  let payload = Bytes.sub_string b 4 (len - 8) in
  Bytes.set_int32_be b (len - 4) (Int32.of_int (Crc32.string payload));
  match decode_one (Bytes.to_string b) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wild stats table count was accepted"

(* --- in-process daemon harness ----------------------------------------- *)

type harness = {
  root : string;
  socket : string;
  mutable daemon : (Daemon.t * unit Domain.t) option;
}

let start_daemon ?(jobs = 1) ?(max_sessions = 64) h =
  assert (h.daemon = None);
  let opts =
    {
      (Daemon.default_options ~socket:h.socket ~root:h.root) with
      Daemon.jobs;
      max_sessions;
      idle_timeout_s = 10.0;
      frame_timeout_s = 2.0;
      ping_every_s = 2.0;
      heartbeat_every_s = 0.2;
      retry_after_s = 0.01;
    }
  in
  (* create binds the socket synchronously: once this returns, clients
     cannot race the listener *)
  let t = Daemon.create opts in
  h.daemon <- Some (t, Domain.spawn (fun () -> Daemon.run t))

let stop_daemon h =
  match h.daemon with
  | None -> ()
  | Some (t, d) ->
    Daemon.stop t;
    Domain.join d;
    h.daemon <- None

let with_harness ?jobs ?max_sessions f =
  let root = tmpdir () in
  let h = { root; socket = Filename.concat root "ormp.sock"; daemon = None } in
  start_daemon ?jobs ?max_sessions h;
  Fun.protect
    ~finally:(fun () ->
      stop_daemon h;
      try rm_rf root with _ -> ())
    (fun () -> f h)

let session_dir h token = Filename.concat h.root (Filename.concat "sessions" token)

let run ?(ack_every = 4) ?net ?(attempts = 20) h token =
  Client.run_session ~socket:h.socket ~token ~workload:"linked_list" ~events ~ack_every
    ~retry:{ Client.default_retry with Client.attempts; backoff_s = 0.005; backoff_max_s = 0.05 }
    ?net ~io_timeout_s:5.0 ()

let ok_stats what = function
  | Ok (st : Client.stats) -> st
  | Error m -> Alcotest.failf "%s: %s" what m

(* --- clean path, serial and pooled ------------------------------------- *)

let test_clean_session_byte_identical () =
  with_harness (fun h ->
      let st = ok_stats "clean" (run h "clean") in
      check_int "no reconnects" 0 st.Client.st_reconnects;
      check_bool "acks arrived" true (st.Client.st_acks > 0);
      check_matches_reference "clean" (session_dir h "clean");
      (* a second run of a finalized token is answered as complete
         without re-streaming a single frame *)
      let st2 = ok_stats "replayed token" (run h "clean") in
      check_int "nothing re-sent" 0 st2.Client.st_frames)

let test_pooled_daemon_byte_identical () =
  with_harness ~jobs:4 (fun h ->
      ignore (ok_stats "pooled" (run h "pooled"));
      check_matches_reference "pooled" (session_dir h "pooled"))

(* --- fault isolation: the heart of the PR ------------------------------- *)

(* Session A suffers a torn frame mid-stream while session B streams
   concurrently: A must recover through retry, B must never notice. *)
let test_torn_frame_isolated_from_neighbor () =
  with_harness (fun h ->
      let a =
        Domain.spawn (fun () ->
            run h "torn-a"
              ~net:
                (Net_fault.create
                   { Net_fault.none with Net_fault.torn_frame = Some 10; dup_retry = Some 700 }))
      in
      let b = run h "quiet-b" in
      let sa = ok_stats "faulted session" (Domain.join a) in
      let sb = ok_stats "neighbor session" b in
      check_bool "fault forced a reconnect" true (sa.Client.st_reconnects >= 1);
      check_int "neighbor saw no reconnects" 0 sb.Client.st_reconnects;
      check_matches_reference "faulted session" (session_dir h "torn-a");
      check_matches_reference "neighbor session" (session_dir h "quiet-b"))

let test_every_fault_class_recovers () =
  with_harness (fun h ->
      List.iter
        (fun (token, plan) ->
          let st = ok_stats token (run h token ~net:(Net_fault.create plan)) in
          check_bool (token ^ " reconnected") true
            (st.Client.st_reconnects >= 1 || plan.Net_fault.slow_frame <> None);
          check_matches_reference token (session_dir h token))
        [
          ("f-torn", { Net_fault.none with Net_fault.torn_frame = Some 7 });
          ("f-drop", { Net_fault.none with Net_fault.disconnect_before = Some 13 });
          ("f-slow", { Net_fault.none with Net_fault.slow_frame = Some 3 });
          ( "f-dup",
            {
              Net_fault.none with
              Net_fault.disconnect_before = Some 20;
              dup_retry = Some 300;
            } );
        ])

(* Raw protocol garbage on one connection must not disturb a concurrent
   well-behaved session. *)
let test_garbage_connection_isolated () =
  with_harness (fun h ->
      let deadline_s = Net_io.now () +. 5.0 in
      let fd = Net_io.connect_unix ~path:h.socket ~deadline_s in
      Net_io.send_all fd "\x00\x00\x00\x08not-ormp\xde\xad\xbe\xef" ~deadline_s;
      let b = run h "beside-garbage" in
      (* the daemon answers Err and closes us; drain to EOF *)
      let buf = Bytes.create 4096 in
      (try
         while Net_io.recv_into fd buf ~deadline_s > 0 do
           ()
         done
       with Net_io.Timeout -> Alcotest.fail "garbage connection was not closed");
      Net_io.close_noerr fd;
      let sb = ok_stats "neighbor of garbage" b in
      check_int "neighbor saw no reconnects" 0 sb.Client.st_reconnects;
      check_matches_reference "neighbor of garbage" (session_dir h "beside-garbage"))

(* --- raw-wire protocol errors ------------------------------------------ *)

let recv_msg fd dec ~deadline_s =
  let buf = Bytes.create 4096 in
  let rec go () =
    match Wire.next dec with
    | Error e -> Alcotest.failf "client-side decode error: %s" e
    | Ok (Some m) -> m
    | Ok None ->
      let n = Net_io.recv_into fd buf ~deadline_s in
      if n = 0 then Alcotest.fail "connection closed while awaiting a frame";
      Wire.feed dec buf 0 n;
      go ()
  in
  go ()

let test_position_gap_is_protocol_error () =
  with_harness (fun h ->
      let deadline_s = Net_io.now () +. 5.0 in
      let fd = Net_io.connect_unix ~path:h.socket ~deadline_s in
      let dec = Wire.decoder () in
      let send m = Net_io.send_all fd (Wire.encode m) ~deadline_s in
      send (Wire.Hello { token = "gappy"; workload = "linked_list"; ack_every = 0 });
      (match recv_msg fd dec ~deadline_s with
      | Wire.Hello_ok { fresh = true; position = 0; _ } -> ()
      | _ -> Alcotest.fail "expected a fresh Hello_ok");
      (* claim to start at event 500 of a session that has seen nothing *)
      send (Wire.Batch { start = 500; chunk = sample_chunk () });
      (match recv_msg fd dec ~deadline_s with
      | Wire.Err e ->
        check_bool "error names the gap" true
          (String.length e >= 3 && String.lowercase_ascii e |> fun s ->
           let rec has i =
             i + 3 <= String.length s && (String.sub s i 3 = "gap" || has (i + 1))
           in
           has 0)
      | m -> Alcotest.failf "expected Err, got %s" (match m with Wire.Ack _ -> "ack" | _ -> "other"));
      Net_io.close_noerr fd;
      (* the gap killed the connection, not the session: it resumes *)
      let st = ok_stats "resumed after gap" (run h "gappy") in
      check_int "fresh stream, no reconnects" 0 st.Client.st_reconnects;
      check_matches_reference "resumed after gap" (session_dir h "gappy"))

let test_duplicate_token_refused_while_attached () =
  with_harness (fun h ->
      let deadline_s = Net_io.now () +. 5.0 in
      let fd = Net_io.connect_unix ~path:h.socket ~deadline_s in
      let dec = Wire.decoder () in
      Net_io.send_all fd
        (Wire.encode (Wire.Hello { token = "held"; workload = "linked_list"; ack_every = 0 }))
        ~deadline_s;
      (match recv_msg fd dec ~deadline_s with
      | Wire.Hello_ok _ -> ()
      | _ -> Alcotest.fail "expected Hello_ok");
      let fd2 = Net_io.connect_unix ~path:h.socket ~deadline_s in
      let dec2 = Wire.decoder () in
      Net_io.send_all fd2
        (Wire.encode (Wire.Hello { token = "held"; workload = "linked_list"; ack_every = 0 }))
        ~deadline_s;
      (match recv_msg fd2 dec2 ~deadline_s with
      | Wire.Err _ -> ()
      | _ -> Alcotest.fail "second claim on an attached token must be refused");
      Net_io.close_noerr fd2;
      Net_io.close_noerr fd)

(* --- shedding ----------------------------------------------------------- *)

let test_shed_past_max_sessions () =
  with_harness ~max_sessions:1 (fun h ->
      let deadline_s = Net_io.now () +. 5.0 in
      (* occupy the single admission slot with a raw, idle session *)
      let fd = Net_io.connect_unix ~path:h.socket ~deadline_s in
      let dec = Wire.decoder () in
      Net_io.send_all fd
        (Wire.encode (Wire.Hello { token = "occupant"; workload = "linked_list"; ack_every = 0 }))
        ~deadline_s;
      (match recv_msg fd dec ~deadline_s with
      | Wire.Hello_ok _ -> ()
      | _ -> Alcotest.fail "occupant admission failed");
      let fd2 = Net_io.connect_unix ~path:h.socket ~deadline_s in
      let dec2 = Wire.decoder () in
      Net_io.send_all fd2
        (Wire.encode (Wire.Hello { token = "latecomer"; workload = "linked_list"; ack_every = 0 }))
        ~deadline_s;
      (match recv_msg fd2 dec2 ~deadline_s with
      | Wire.Shed { retry_after_s; _ } -> check_bool "retry hint" true (retry_after_s > 0.0)
      | _ -> Alcotest.fail "expected Shed past max_sessions");
      Net_io.close_noerr fd2;
      (* freeing the slot lets the shed client in; its retry loop absorbs
         the shed responses in between *)
      Net_io.close_noerr fd;
      let st = ok_stats "latecomer" (run h "latecomer") in
      ignore st;
      check_matches_reference "latecomer" (session_dir h "latecomer"))

(* --- daemon restart ------------------------------------------------------ *)

(* Stream part of a session, drop the connection, take the whole daemon
   down and start a fresh one on the same root: the client's next attempt
   must resume from the journaled position and finish byte-identically. *)
let test_restart_resumes_from_journal () =
  with_harness (fun h ->
      let deadline_s = Net_io.now () +. 5.0 in
      let fd = Net_io.connect_unix ~path:h.socket ~deadline_s in
      let dec = Wire.decoder () in
      let send m = Net_io.send_all fd (Wire.encode m) ~deadline_s in
      send (Wire.Hello { token = "phoenix"; workload = "linked_list"; ack_every = 1 });
      (match recv_msg fd dec ~deadline_s with
      | Wire.Hello_ok { position = 0; _ } -> ()
      | _ -> Alcotest.fail "expected a fresh Hello_ok");
      (* stream the first 300 events by hand, then vanish mid-session *)
      let pos = ref 0 in
      while !pos < 300 do
        (match events.(!pos) with
        | Event.Access { instr; addr; size; is_store } ->
          let chunk =
            {
              Batch.instr = [| instr |];
              addr = [| addr |];
              size = [| size |];
              store = [| Bool.to_int is_store |];
              len = 1;
            }
          in
          send (Wire.Batch { start = !pos; chunk })
        | ev -> send (Wire.Ev { position = !pos; event = ev }));
        (match recv_msg fd dec ~deadline_s with
        | Wire.Ack { position } -> check_int "acked in order" (!pos + 1) position
        | _ -> Alcotest.fail "expected an Ack per frame at ack_every=1");
        incr pos
      done;
      Net_io.close_noerr fd;
      stop_daemon h;
      start_daemon h;
      let st = ok_stats "after restart" (run h "phoenix") in
      check_int "no reconnects against the new daemon" 0 st.Client.st_reconnects;
      (* the resumed stream skipped what the journal already held *)
      check_bool "resumed, not restarted" true
        (st.Client.st_frames < Array.length events / Batch.default_capacity + 60);
      check_matches_reference "after restart" (session_dir h "phoenix"))

(* --- live introspection --------------------------------------------------- *)

let validate_flight_bundles root =
  let flight_dir = Filename.concat root "flight" in
  let bundles = if Sys.file_exists flight_dir then Sys.readdir flight_dir else [||] in
  Array.iter
    (fun name ->
      let dir = Filename.concat flight_dir name in
      let trace = read_file (Filename.concat dir "trace.json") in
      (match Option.map Spans.validate_json (Result.to_option (J.of_string trace)) with
      | Some (Ok _) -> ()
      | _ -> Alcotest.failf "flight bundle %s: trace.json does not validate" name);
      match Sexp.load (Filename.concat dir "record.sexp") with
      | Ok s -> (
        match Sexp.assoc "reason" s with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "flight bundle %s: no reason field (%s)" name e)
      | Error e -> Alcotest.failf "flight bundle %s: record.sexp: %s" name e)
    bundles;
  Array.length bundles

(* Stream 300 events by hand at ack_every=1, then ask for a snapshot on
   the same connection: the row must show exactly the position the client
   has had acked, with the WAL caught up. Then a faulted client resumes
   through a torn frame and every flight bundle the daemon dumped for it
   must validate. *)
let test_live_stats_rows_track_positions () =
  with_harness (fun h ->
      let deadline_s = Net_io.now () +. 10.0 in
      let fd = Net_io.connect_unix ~path:h.socket ~deadline_s in
      let dec = Wire.decoder () in
      let send m = Net_io.send_all fd (Wire.encode m) ~deadline_s in
      send (Wire.Hello { token = "statly"; workload = "linked_list"; ack_every = 1 });
      (match recv_msg fd dec ~deadline_s with
      | Wire.Hello_ok { fresh = true; position = 0; _ } -> ()
      | _ -> Alcotest.fail "expected a fresh Hello_ok");
      let send_event pos =
        match events.(pos) with
        | Event.Access { instr; addr; size; is_store } ->
          let chunk =
            {
              Batch.instr = [| instr |];
              addr = [| addr |];
              size = [| size |];
              store = [| Bool.to_int is_store |];
              len = 1;
            }
          in
          send (Wire.Batch { start = pos; chunk })
        | ev -> send (Wire.Ev { position = pos; event = ev })
      in
      let expect_ack pos =
        match recv_msg fd dec ~deadline_s with
        | Wire.Ack { position } -> check_int "acked in order" (pos + 1) position
        | _ -> Alcotest.fail "expected an Ack per frame at ack_every=1"
      in
      for pos = 0 to 299 do
        send_event pos;
        expect_ack pos
      done;
      send Wire.Stats_req;
      let rec recv_stats () =
        match recv_msg fd dec ~deadline_s with
        | Wire.Stats s -> s
        | Wire.Ping ->
          send Wire.Pong;
          recv_stats ()
        | _ -> Alcotest.fail "expected a Stats frame"
      in
      let s = recv_stats () in
      check_int "one live session" 1 s.Stats.s_sessions_live;
      check_bool "start was counted" true (s.Stats.s_sessions_started >= 1);
      (match s.Stats.s_rows with
      | [ r ] ->
        check_string "row token" "statly" r.Stats.r_token;
        check_string "row workload" "linked_list" r.Stats.r_workload;
        check_int "row position is the acked position" 300 r.Stats.r_position;
        check_bool "journal has bytes" true (r.Stats.r_journal_bytes > 0);
        check_int "ack_every=1 leaves no journal lag" 0 r.Stats.r_journal_lag
      | rows -> Alcotest.failf "expected one session row, got %d" (List.length rows));
      (* the snapshot did not disturb the stream: it keeps flowing *)
      for pos = 300 to 309 do
        send_event pos;
        expect_ack pos
      done;
      Net_io.close_noerr fd;
      (* a torn-frame client forces a reconnect; the resume dumps a
         flight bundle, and the registry counts both sessions *)
      let st =
        ok_stats "faulted beside stats"
          (run h "flighty"
             ~net:(Net_fault.create { Net_fault.none with Net_fault.torn_frame = Some 9 }))
      in
      check_bool "fault forced a reconnect" true (st.Client.st_reconnects >= 1);
      match Client.fetch_stats ~socket:h.socket () with
      | Error m -> Alcotest.fail ("fetch_stats: " ^ m)
      | Ok s2 ->
        check_bool "both sessions started" true (s2.Stats.s_sessions_started >= 2);
        check_bool "resume was counted" true (s2.Stats.s_sessions_resumed >= 1);
        check_bool "flight dump was counted" true (s2.Stats.s_flight_dumps >= 1);
        check_bool "events flowed" true (s2.Stats.s_events_total > 300);
        let n = validate_flight_bundles h.root in
        check_bool "at least one flight bundle on disk" true (n >= 1))

(* --- percentile helper --------------------------------------------------- *)

let test_percentile () =
  let xs = [ 5.0; 1.0; 4.0; 2.0; 3.0 ] in
  check_string "p50" "3." (Printf.sprintf "%g." (Client.percentile xs 0.5));
  check_string "p99" "5." (Printf.sprintf "%g." (Client.percentile xs 0.99));
  check_string "empty" "0." (Printf.sprintf "%g." (Client.percentile [] 0.99))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "ormp_server"
    [
      ( "wire",
        [
          Alcotest.test_case "roundtrip at every slice size" `Quick test_wire_roundtrip;
          Alcotest.test_case "crc rejects corruption" `Quick test_wire_crc_rejects_corruption;
          Alcotest.test_case "partial frames buffer visibly" `Quick
            test_wire_partial_frame_buffers;
          QCheck_alcotest.to_alcotest prop_stats_roundtrip;
          Alcotest.test_case "stats version is checked" `Quick test_stats_version_rejected;
          Alcotest.test_case "stats corruption is rejected" `Quick
            test_stats_corruption_rejected;
        ] );
      ( "introspection",
        [
          Alcotest.test_case "stats rows track client positions" `Quick
            test_live_stats_rows_track_positions;
        ] );
      ( "sessions",
        [
          Alcotest.test_case "clean session is byte-identical" `Quick
            test_clean_session_byte_identical;
          Alcotest.test_case "pooled daemon is byte-identical" `Quick
            test_pooled_daemon_byte_identical;
          Alcotest.test_case "percentile" `Quick test_percentile;
        ] );
      ( "faults",
        [
          Alcotest.test_case "torn frame isolated from neighbor" `Quick
            test_torn_frame_isolated_from_neighbor;
          Alcotest.test_case "every fault class recovers" `Quick
            test_every_fault_class_recovers;
          Alcotest.test_case "garbage connection isolated" `Quick
            test_garbage_connection_isolated;
          Alcotest.test_case "position gap is a protocol error" `Quick
            test_position_gap_is_protocol_error;
          Alcotest.test_case "attached token cannot be stolen" `Quick
            test_duplicate_token_refused_while_attached;
        ] );
      ( "overload",
        [ Alcotest.test_case "shed past max-sessions" `Quick test_shed_past_max_sessions ] );
      ( "restart",
        [
          Alcotest.test_case "restart resumes from the journal" `Quick
            test_restart_resumes_from_journal;
        ] );
    ]
