open Ormp_vm
open Ormp_trace

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let recording_engine ?(config = Config.default) ?(statics = []) () =
  let r = Sink.recorder () in
  let e = Engine.make ~config ~sink:(Sink.recorder_sink r) ~statics in
  (e, r)

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let test_alloc_emits_probe () =
  let e, r = recording_engine () in
  let site = Engine.instr e ~name:"t.alloc" Instr.Alloc_site in
  let o = Engine.alloc e ~site ~type_name:"n" 32 in
  (match Sink.events r with
  | [| Event.Alloc { site = s; addr; size; type_name } |] ->
    check_int "site" site s;
    check_int "addr" (Engine.addr o) addr;
    check_int "size" 32 size;
    check_bool "type" true (type_name = Some "n")
  | evs -> Alcotest.failf "unexpected events (%d)" (Array.length evs));
  check_int "obj size" 32 (Engine.obj_size o)

let test_load_store_events () =
  let e, r = recording_engine () in
  let site = Engine.instr e ~name:"t.alloc" Instr.Alloc_site in
  let ld = Engine.instr e ~name:"t.ld" Instr.Load in
  let st = Engine.instr e ~name:"t.st" Instr.Store in
  let o = Engine.alloc e ~site 64 in
  Engine.load e ~instr:ld o 8;
  Engine.store e ~instr:st ~size:4 o 16;
  (match Sink.events r with
  | [|
      _;
      Event.Access { instr = i1; addr = ad1; size = s1; is_store = st1 };
      Event.Access { instr = i2; addr = ad2; size = s2; is_store = st2 };
    |] ->
    check_int "ld instr" ld i1;
    check_int "ld addr" (Engine.addr o + 8) ad1;
    check_int "ld size" 8 s1;
    check_bool "ld kind" false st1;
    check_int "st instr" st i2;
    check_int "st addr" (Engine.addr o + 16) ad2;
    check_int "st size" 4 s2;
    check_bool "st kind" true st2
  | evs -> Alcotest.failf "unexpected events (%d)" (Array.length evs))

let test_access_bounds_checked () =
  let e, _ = recording_engine () in
  let site = Engine.instr e ~name:"t.alloc" Instr.Alloc_site in
  let ld = Engine.instr e ~name:"t.ld" Instr.Load in
  let o = Engine.alloc e ~site 16 in
  let rejects off size =
    check_bool
      (Printf.sprintf "off=%d size=%d rejected" off size)
      true
      (try
         Engine.load e ~instr:ld ~size o off;
         false
       with Invalid_argument _ -> true)
  in
  rejects (-1) 8;
  rejects 16 1;
  rejects 9 8;
  (* boundary access is fine *)
  Engine.load e ~instr:ld ~size:8 o 8

let test_free_emits_probe_and_recycles () =
  let e, r = recording_engine () in
  let site = Engine.instr e ~name:"t.alloc" Instr.Alloc_site in
  let fsite = Engine.instr e ~name:"t.free" Instr.Free_site in
  let o = Engine.alloc e ~site 32 in
  Engine.free e ~site:fsite o;
  check_bool "free event emitted" true
    (Array.exists (function Event.Free { addr; _ } -> addr = Engine.addr o | _ -> false)
       (Sink.events r));
  check_int "allocator empty" 0
    (Ormp_memsim.Allocator.live_blocks (Engine.allocator e))

let test_statics_emitted_upfront () =
  let statics = [ { Ormp_memsim.Layout.name = "tbl"; size = 128 } ] in
  let e, r = recording_engine ~statics () in
  check_int "one alloc event at startup" 1 (Array.length (Sink.events r));
  let o = Engine.static e "tbl" in
  check_int "size" 128 (Engine.obj_size o);
  check_bool "address in data segment" true (Engine.addr o >= Config.default.Config.static_base);
  check_bool "unknown static raises" true
    (try
       ignore (Engine.static e "nope");
       false
     with Not_found -> true)

let test_raw_accesses () =
  let e, r = recording_engine () in
  let ld = Engine.instr e ~name:"t.raw" Instr.Load in
  Engine.load_raw e ~instr:ld 0xdeadbeef;
  Engine.store_raw e ~instr:ld ~size:2 0xdeadbef0;
  check_int "two events" 2 (Array.length (Sink.events r))

let test_pool_pieces () =
  let e, r = recording_engine () in
  let site = Engine.instr e ~name:"t.pool" Instr.Alloc_site in
  let ld = Engine.instr e ~name:"t.ld" Instr.Load in
  let pool = Engine.pool_create e ~site 256 in
  check_int "pool creation is one alloc event" 1 (Array.length (Sink.events r));
  let p1 = Engine.pool_piece e ~pool 24 in
  let p2 = Engine.pool_piece e ~pool 24 in
  check_int "pieces emit no probe" 1 (Array.length (Sink.events r));
  check_int "p1 at pool base" (Engine.addr pool) (Engine.addr p1);
  check_int "p2 8-aligned after p1" (Engine.addr pool + 24) (Engine.addr p2);
  Engine.load e ~instr:ld p1 8;
  check_bool "piece access lands inside pool" true
    (Array.exists
       (function
         | Event.Access { addr; _ } ->
           addr >= Engine.addr pool && addr < Engine.addr pool + 256
         | _ -> false)
       (Sink.events r));
  Engine.pool_reset e ~pool;
  let p3 = Engine.pool_piece e ~pool 24 in
  check_int "reset rewinds" (Engine.addr pool) (Engine.addr p3)

let test_pool_misuse () =
  let e, _ = recording_engine () in
  let site = Engine.instr e ~name:"t.alloc" Instr.Alloc_site in
  let o = Engine.alloc e ~site 32 in
  check_bool "piece of non-pool raises" true
    (try
       ignore (Engine.pool_piece e ~pool:o 8);
       false
     with Invalid_argument _ -> true);
  check_bool "reset of non-pool raises" true
    (try
       Engine.pool_reset e ~pool:o;
       false
     with Invalid_argument _ -> true)

let test_pool_exposed_pieces () =
  let e, r = recording_engine () in
  let site = Engine.instr e ~name:"t.pool" Instr.Alloc_site in
  let psite = Engine.instr e ~name:"t.piece" Instr.Alloc_site in
  let pool = Engine.pool_create e ~site ~expose_pieces:true ~pieces_site:psite 256 in
  check_int "pool malloc unprobed" 0 (Array.length (Sink.events r));
  let p1 = Engine.pool_piece e ~pool 24 in
  let _p2 = Engine.pool_piece e ~pool 24 in
  check_int "pieces probed" 2 (Array.length (Sink.events r));
  (match (Sink.events r).(0) with
  | Event.Alloc { site = s; addr; size; _ } ->
    check_int "piece site" psite s;
    check_int "piece addr" (Engine.addr p1) addr;
    check_int "piece size" 24 size
  | _ -> Alcotest.fail "expected piece alloc event");
  Engine.pool_reset e ~pool;
  let frees =
    Array.to_list (Sink.events r)
    |> List.filter (function Event.Free _ -> true | _ -> false)
  in
  check_int "reset frees live pieces" 2 (List.length frees);
  (* after reset, pieces are re-probed from the base again *)
  let p3 = Engine.pool_piece e ~pool 24 in
  check_int "reset rewinds" (Engine.addr pool) (Engine.addr p3)

let test_pool_exposed_validation () =
  let e, _ = recording_engine () in
  let site = Engine.instr e ~name:"t.pool" Instr.Alloc_site in
  check_bool "expose without site rejected" true
    (try
       ignore (Engine.pool_create e ~site ~expose_pieces:true 64);
       false
     with Invalid_argument _ -> true)

let test_pool_exposed_translates_per_piece () =
  (* The OMC must see pieces as distinct objects with serials. *)
  let tuples = ref [] in
  let cdc =
    Ormp_core.Cdc.create
      ~site_name:(Printf.sprintf "s%d")
      ~on_tuple:(fun tu -> tuples := tu :: !tuples)
      ()
  in
  let e =
    Engine.make ~config:Config.default ~sink:(Ormp_core.Cdc.sink cdc) ~statics:[]
  in
  let site = Engine.instr e ~name:"t.pool" Instr.Alloc_site in
  let psite = Engine.instr e ~name:"t.piece" Instr.Alloc_site in
  let ld = Engine.instr e ~name:"t.ld" Instr.Load in
  let pool = Engine.pool_create e ~site ~expose_pieces:true ~pieces_site:psite 256 in
  let p1 = Engine.pool_piece e ~pool 24 in
  let p2 = Engine.pool_piece e ~pool 24 in
  Engine.load e ~instr:ld p1 8;
  Engine.load e ~instr:ld p2 8;
  (match List.rev !tuples with
  | [ t1; t2 ] ->
    check_int "same group" t1.Ormp_core.Tuple.group t2.Ormp_core.Tuple.group;
    check_int "first piece serial" 0 t1.Ormp_core.Tuple.obj;
    check_int "second piece serial" 1 t2.Ormp_core.Tuple.obj;
    check_int "piece-relative offset" 8 t1.Ormp_core.Tuple.offset;
    check_int "piece-relative offset" 8 t2.Ormp_core.Tuple.offset
  | l -> Alcotest.failf "expected 2 tuples, got %d" (List.length l))

let test_pool_exhaustion () =
  let e, _ = recording_engine () in
  let site = Engine.instr e ~name:"t.pool" Instr.Alloc_site in
  let pool = Engine.pool_create e ~site 32 in
  ignore (Engine.pool_piece e ~pool 24);
  check_bool "raises" true
    (try
       ignore (Engine.pool_piece e ~pool 16);
       false
     with Out_of_memory -> true)

(* ------------------------------------------------------------------ *)
(* Runner + Config                                                     *)
(* ------------------------------------------------------------------ *)

let tiny =
  Program.make ~name:"tiny" ~description:"two objects, a few accesses" (fun e ->
      let site = Engine.instr e ~name:"tiny.alloc" Instr.Alloc_site in
      let ld = Engine.instr e ~name:"tiny.ld" Instr.Load in
      let st = Engine.instr e ~name:"tiny.st" Instr.Store in
      let a = Engine.alloc e ~site 64 in
      let b = Engine.alloc e ~site 64 in
      for i = 0 to 7 do
        Engine.load e ~instr:ld a (i * 8);
        Engine.store e ~instr:st b (i * 8)
      done)

let run_trace config =
  let r = Ormp_trace.Sink.recorder () in
  ignore (Runner.run ~config tiny (Ormp_trace.Sink.recorder_sink r));
  Sink.events r

let test_runner_deterministic () =
  check_bool "same config, same trace" true (run_trace Config.default = run_trace Config.default)

let test_runner_allocator_changes_addresses () =
  let t0 = run_trace Config.default in
  let t1 = run_trace { Config.default with Config.policy = Ormp_memsim.Allocator.Bump;
                       heap_base = 0x2000_0000 } in
  check_int "same length" (Array.length t0) (Array.length t1);
  check_bool "raw addresses differ" true (t0 <> t1);
  (* but the event *kinds* and instruction ids line up 1:1 *)
  Array.iteri
    (fun i ev ->
      match (ev, t1.(i)) with
      | Event.Access a, Event.Access b ->
        check_int "same instr" a.instr b.instr;
        check_bool "same kind" a.is_store b.is_store
      | Event.Alloc a, Event.Alloc b -> check_int "same site" a.site b.site
      | Event.Free _, Event.Free _ -> ()
      | _ -> Alcotest.fail "event shape mismatch")
    t0

let test_runner_bare () =
  let r = Runner.run_bare tiny in
  check_bool "registered instrs" true (Instr.count r.Runner.table >= 3);
  check_bool "elapsed non-negative" true (r.Runner.elapsed >= 0.0)

let test_config_variants_distinct () =
  let vs = Config.variants Config.default in
  check_int "five variants" 5 (List.length vs);
  let names = List.map Config.name vs in
  check_int "distinct names" 5 (List.length (List.sort_uniq compare names))

let test_workload_seed_in_config () =
  let mk seed =
    let r = Sink.recorder () in
    ignore
      (Runner.run
         ~config:{ Config.default with Config.seed }
         (Ormp_workloads.Micro.random_walk ~nodes:16 ~steps:64 ())
         (Sink.recorder_sink r));
    Sink.events r
  in
  check_bool "same seed same trace" true (mk 1 = mk 1);
  check_bool "different seed different trace" true (mk 1 <> mk 2)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "ormp_vm"
    [
      ( "engine",
        [
          tc "alloc emits probe" test_alloc_emits_probe;
          tc "load/store events" test_load_store_events;
          tc "bounds checked" test_access_bounds_checked;
          tc "free emits probe" test_free_emits_probe_and_recycles;
          tc "statics upfront" test_statics_emitted_upfront;
          tc "raw accesses" test_raw_accesses;
          tc "pool pieces" test_pool_pieces;
          tc "pool misuse" test_pool_misuse;
          tc "pool exposed pieces" test_pool_exposed_pieces;
          tc "pool exposed validation" test_pool_exposed_validation;
          tc "pool exposed translates per piece" test_pool_exposed_translates_per_piece;
          tc "pool exhaustion" test_pool_exhaustion;
        ] );
      ( "runner",
        [
          tc "deterministic" test_runner_deterministic;
          tc "allocator changes raw only" test_runner_allocator_changes_addresses;
          tc "bare run" test_runner_bare;
          tc "config variants" test_config_variants_distinct;
          tc "workload seed" test_workload_seed_in_config;
        ] );
    ]
