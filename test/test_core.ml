open Ormp_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let site_name = Printf.sprintf "site%d"

(* ------------------------------------------------------------------ *)
(* Omc                                                                 *)
(* ------------------------------------------------------------------ *)

let test_translate_basic () =
  let o = Omc.create ~site_name () in
  Omc.on_alloc o ~time:0 ~site:5 ~addr:1000 ~size:64 ~type_name:None;
  check_bool "inside" true (Omc.translate o 1010 = Some (0, 0, 10));
  check_bool "at base" true (Omc.translate o 1000 = Some (0, 0, 0));
  check_bool "past end" true (Omc.translate o 1064 = None);
  check_bool "before" true (Omc.translate o 999 = None);
  check_int "hits" 2 (Omc.translations o);
  check_int "misses" 2 (Omc.misses o)

let test_groups_by_site () =
  let o = Omc.create ~site_name () in
  Omc.on_alloc o ~time:0 ~site:1 ~addr:1000 ~size:16 ~type_name:None;
  Omc.on_alloc o ~time:1 ~site:1 ~addr:2000 ~size:16 ~type_name:None;
  Omc.on_alloc o ~time:2 ~site:2 ~addr:3000 ~size:16 ~type_name:None;
  check_int "two groups" 2 (List.length (Omc.groups o));
  check_bool "same site, same group, serials 0 and 1" true
    (Omc.translate o 2000 = Some (0, 1, 0));
  check_bool "other site is group 1" true (Omc.translate o 3000 = Some (1, 0, 0));
  let g0 = Omc.group o 0 in
  check_int "population" 2 g0.Omc.population;
  Alcotest.(check string) "label from site" "site1" g0.Omc.label

let test_groups_by_type () =
  let o = Omc.create ~grouping:`Type ~site_name () in
  Omc.on_alloc o ~time:0 ~site:1 ~addr:1000 ~size:16 ~type_name:(Some "node");
  Omc.on_alloc o ~time:1 ~site:2 ~addr:2000 ~size:16 ~type_name:(Some "node");
  Omc.on_alloc o ~time:2 ~site:1 ~addr:3000 ~size:16 ~type_name:(Some "edge");
  check_int "grouped by type" 2 (List.length (Omc.groups o));
  check_bool "two sites, one type group" true (Omc.translate o 2000 = Some (0, 1, 0));
  Alcotest.(check string) "label is type" "node" (Omc.group o 0).Omc.label;
  (* untyped allocations fall back to site grouping *)
  Omc.on_alloc o ~time:3 ~site:9 ~addr:4000 ~size:16 ~type_name:None;
  Alcotest.(check string) "fallback label" "site9" (Omc.group o 2).Omc.label

let test_free_and_lifetimes () =
  let o = Omc.create ~site_name () in
  Omc.on_alloc o ~time:3 ~site:1 ~addr:1000 ~size:32 ~type_name:None;
  Omc.on_free o ~time:9 ~addr:1000;
  check_bool "gone after free" true (Omc.translate o 1010 = None);
  check_int "no live objects" 0 (Omc.live_objects o);
  check_int "max live" 1 (Omc.max_live_objects o);
  (match Omc.lifetimes o with
  | [ lt ] ->
    check_int "alloc time" 3 lt.Omc.alloc_time;
    check_bool "free time" true (lt.Omc.free_time = Some 9);
    check_int "base" 1000 lt.Omc.base
  | l -> Alcotest.failf "expected 1 lifetime, got %d" (List.length l));
  (* address reuse gets a fresh serial in the same group *)
  Omc.on_alloc o ~time:10 ~site:1 ~addr:1000 ~size:32 ~type_name:None;
  check_bool "reused address, new serial" true (Omc.translate o 1000 = Some (0, 1, 0))

let test_unknown_free_ignored () =
  let o = Omc.create ~site_name () in
  Omc.on_free o ~time:0 ~addr:555;
  check_int "still empty" 0 (Omc.live_objects o)

let test_group_unknown_id () =
  let o = Omc.create ~site_name () in
  check_bool "raises" true
    (try
       ignore (Omc.group o 0);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Cdc                                                                 *)
(* ------------------------------------------------------------------ *)

let mk_cdc () =
  let tuples = ref [] in
  let wild = ref [] in
  let cdc =
    Cdc.create ~site_name
      ~on_wild:(fun ev -> wild := ev :: !wild)
      ~on_tuple:(fun tu -> tuples := tu :: !tuples)
      ()
  in
  (cdc, Cdc.sink cdc, tuples, wild)

let access ~instr ~addr ~is_store =
  Ormp_trace.Event.Access { instr; addr; size = 8; is_store }

let test_cdc_translates_and_stamps () =
  let cdc, sink, tuples, _ = mk_cdc () in
  sink (Ormp_trace.Event.Alloc { site = 1; addr = 1000; size = 64; type_name = None });
  sink (access ~instr:7 ~addr:1008 ~is_store:false);
  sink (access ~instr:8 ~addr:1016 ~is_store:true);
  (match List.rev !tuples with
  | [ t1; t2 ] ->
    check_int "instr" 7 t1.Tuple.instr;
    check_int "group" 0 t1.Tuple.group;
    check_int "object" 0 t1.Tuple.obj;
    check_int "offset" 8 t1.Tuple.offset;
    check_int "time 0" 0 t1.Tuple.time;
    check_bool "load" false t1.Tuple.is_store;
    check_int "time 1" 1 t2.Tuple.time;
    check_bool "store" true t2.Tuple.is_store
  | l -> Alcotest.failf "expected 2 tuples, got %d" (List.length l));
  check_int "collected" 2 (Cdc.collected cdc);
  check_int "wild" 0 (Cdc.wild cdc)

let test_cdc_wild_routing () =
  let cdc, sink, tuples, wild = mk_cdc () in
  sink (access ~instr:7 ~addr:0xdead ~is_store:false);
  check_int "no tuple" 0 (List.length !tuples);
  check_int "one wild" 1 (List.length !wild);
  check_int "wild counted" 1 (Cdc.wild cdc);
  check_int "clock not advanced by wild accesses" 0 (Cdc.collected cdc)

let test_cdc_free_routing () =
  let _, sink, tuples, _ = mk_cdc () in
  sink (Ormp_trace.Event.Alloc { site = 1; addr = 1000; size = 64; type_name = None });
  sink (Ormp_trace.Event.Free { addr = 1000; site = None });
  sink (access ~instr:7 ~addr:1000 ~is_store:false);
  check_int "access after free is wild" 0 (List.length !tuples)

let test_tuple_pp () =
  let t = { Tuple.instr = 1; group = 2; obj = 3; offset = 4; time = 5; is_store = true } in
  Alcotest.(check string) "render" "(st i1, g2, o3, +4, t5)" (Format.asprintf "%a" Tuple.pp t)

(* ------------------------------------------------------------------ *)
(* Decompose                                                           *)
(* ------------------------------------------------------------------ *)

let tuples_fixture =
  [
    { Tuple.instr = 1; group = 0; obj = 0; offset = 0; time = 0; is_store = false };
    { Tuple.instr = 2; group = 0; obj = 0; offset = 8; time = 1; is_store = true };
    { Tuple.instr = 1; group = 0; obj = 1; offset = 0; time = 2; is_store = false };
    { Tuple.instr = 1; group = 1; obj = 0; offset = 16; time = 3; is_store = false };
  ]

let test_horizontal () =
  let h = Decompose.Horizontal.create () in
  List.iter (Decompose.Horizontal.push h) tuples_fixture;
  check_int "length" 4 (Decompose.Horizontal.length h);
  Alcotest.(check (array int)) "instrs" [| 1; 2; 1; 1 |] (Decompose.Horizontal.instrs h);
  Alcotest.(check (array int)) "groups" [| 0; 0; 0; 1 |] (Decompose.Horizontal.groups h);
  Alcotest.(check (array int)) "objects" [| 0; 0; 1; 0 |] (Decompose.Horizontal.objects h);
  Alcotest.(check (array int)) "offsets" [| 0; 8; 0; 16 |] (Decompose.Horizontal.offsets h);
  check_int "four dimensions in paper order" 4 (List.length (Decompose.Horizontal.dimensions h));
  Alcotest.(check (list string)) "dimension names"
    [ "instr"; "group"; "object"; "offset" ]
    (List.map fst (Decompose.Horizontal.dimensions h))

let test_vertical () =
  let v = Decompose.Vertical.create () in
  List.iter (Decompose.Vertical.push v) tuples_fixture;
  let keys = Decompose.Vertical.keys v in
  check_int "three (instr, group) keys" 3 (List.length keys);
  Alcotest.(check (array (triple int int int)))
    "stream of (i1,g0)"
    [| (0, 0, 0); (1, 0, 2) |]
    (Decompose.Vertical.stream v { Decompose.Vertical.instr = 1; group = 0 });
  Alcotest.(check (array (triple int int int)))
    "unknown key empty" [||]
    (Decompose.Vertical.stream v { Decompose.Vertical.instr = 9; group = 9 })

let test_vertical_reassemble () =
  let v = Decompose.Vertical.create () in
  List.iter (Decompose.Vertical.push v) tuples_fixture;
  let back = Decompose.Vertical.reassemble v in
  check_int "all entries" 4 (Array.length back);
  Array.iteri
    (fun i (_, (_, _, t)) -> check_int "global time order restored" i t)
    back

let prop_vertical_reassembles_any =
  QCheck.Test.make ~name:"vertical decomposition is reversible via time stamps" ~count:200
    QCheck.(small_list (pair (int_range 0 5) (pair (int_range 0 3) (int_range 0 64))))
    (fun spec ->
      let tuples =
        List.mapi
          (fun time (instr, (group, offset)) ->
            { Tuple.instr; group; obj = 0; offset; time; is_store = false })
          spec
      in
      let v = Decompose.Vertical.create () in
      List.iter (Decompose.Vertical.push v) tuples;
      let back = Decompose.Vertical.reassemble v in
      Array.length back = List.length tuples
      && List.for_all2
           (fun tu (k, (obj, off, t)) ->
             k.Decompose.Vertical.instr = tu.Tuple.instr
             && k.Decompose.Vertical.group = tu.Tuple.group
             && obj = tu.Tuple.obj && off = tu.Tuple.offset && t = tu.Tuple.time)
           tuples (Array.to_list back))

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "ormp_core"
    [
      ( "omc",
        [
          tc "translate basic" test_translate_basic;
          tc "groups by site" test_groups_by_site;
          tc "groups by type" test_groups_by_type;
          tc "free and lifetimes" test_free_and_lifetimes;
          tc "unknown free ignored" test_unknown_free_ignored;
          tc "unknown group id" test_group_unknown_id;
        ] );
      ( "cdc",
        [
          tc "translates and stamps" test_cdc_translates_and_stamps;
          tc "wild routing" test_cdc_wild_routing;
          tc "free routing" test_cdc_free_routing;
          tc "tuple pp" test_tuple_pp;
        ] );
      ( "decompose",
        [
          tc "horizontal" test_horizontal;
          tc "vertical" test_vertical;
          tc "vertical reassemble" test_vertical_reassemble;
          QCheck_alcotest.to_alcotest prop_vertical_reassembles_any;
        ] );
    ]
