(* The pre-arena record-graph Sequitur implementation, preserved verbatim
   (minus telemetry) as the reference oracle for the equivalence suite in
   [test_sequitur.ml]: the flat-arena rewrite in [lib/sequitur] must
   produce byte-identical grammars — rule ids included — for any input,
   and this module is what "identical" is measured against. Not linked
   into the library. *)

type symbol = {
  mutable kind : kind;
  mutable prev : symbol;
  mutable next : symbol;
  mutable dead : bool;
}

and kind =
  | Guard of rule
  | Term of int
  | Nonterm of rule

and rule = {
  id : int;
  mutable guard : symbol;
  mutable refcount : int;
}

type t = {
  start : rule;
  digrams : (int, symbol) Hashtbl.t; (* packed digram key -> first occurrence *)
  live_rules : (int, rule) Hashtbl.t;
  mutable next_rule_id : int;
  mutable input_len : int;
}

let is_guard s = match s.kind with Guard _ -> true | _ -> false

let code_of s =
  match s.kind with
  | Term v -> v lsl 1
  | Nonterm r -> (r.id lsl 1) lor 1
  | Guard _ -> invalid_arg "Sequitur_legacy.code_of: guard"

let pack hi lo = (hi lsl 31) lxor lo

let digram_key s = pack (code_of s) (code_of s.next)

let same_digram a b = code_of a = code_of b && code_of a.next = code_of b.next

let make_rule id =
  let rec rule = { id; guard = g; refcount = 0 }
  and g = { kind = Guard rule; prev = g; next = g; dead = false } in
  rule

let create ?(size_hint = 0) () =
  let start = make_rule 0 in
  let t =
    {
      start;
      digrams = Hashtbl.create (max 4096 size_hint);
      live_rules = Hashtbl.create 64;
      next_rule_id = 1;
      input_len = 0;
    }
  in
  Hashtbl.replace t.live_rules 0 start;
  t

let first r = r.guard.next
let last r = r.guard.prev

let reuse r = r.refcount <- r.refcount + 1

let kill_rule t r = if Hashtbl.mem t.live_rules r.id then Hashtbl.remove t.live_rules r.id

let deuse t r =
  r.refcount <- r.refcount - 1;
  if r.refcount = 0 && r.id <> 0 then kill_rule t r

let delete_digram t s =
  if (not (is_guard s)) && not (is_guard s.next) then
    let key = digram_key s in
    match Hashtbl.find_opt t.digrams key with
    | Some m when m == s -> Hashtbl.remove t.digrams key
    | _ -> ()

let join t left right =
  if not (is_guard left) then delete_digram t left;
  left.next <- right;
  right.prev <- left

let insert_after t q ns =
  join t ns q.next;
  join t q ns

let delete_symbol t s =
  delete_digram t s;
  join t s.prev s.next;
  s.dead <- true;
  match s.kind with Nonterm r -> deuse t r | _ -> ()

let fresh kind =
  let rec s = { kind; prev = s; next = s; dead = false } in
  s

let append_copy t r proto =
  let ns = fresh proto.kind in
  (match proto.kind with Nonterm r2 -> reuse r2 | _ -> ());
  insert_after t (last r) ns

let rec check t s =
  if is_guard s || is_guard s.next then false
  else
    let key = digram_key s in
    match Hashtbl.find_opt t.digrams key with
    | None ->
      Hashtbl.replace t.digrams key s;
      false
    | Some m when m == s -> false
    | Some m when m.dead || m.next.dead || is_guard m.next || not (same_digram m s) ->
      Hashtbl.replace t.digrams key s;
      false
    | Some m when m.next == s || s.next == m -> false
    | Some m ->
      process_match t s m;
      true

and process_match t s m =
  let r =
    if is_guard m.prev && is_guard m.next.next then begin
      let r = match m.prev.kind with Guard r -> r | _ -> assert false in
      substitute t s r;
      r
    end
    else begin
      let r = make_rule t.next_rule_id in
      t.next_rule_id <- t.next_rule_id + 1;
      Hashtbl.replace t.live_rules r.id r;
      append_copy t r s;
      append_copy t r s.next;
      substitute t m r;
      substitute t s r;
      Hashtbl.replace t.digrams (digram_key (first r)) (first r);
      r
    end
  in
  let underused s = match s.kind with Nonterm r2 -> r2.refcount = 1 | _ -> false in
  let f = first r in
  if underused f then expand_symbol t f;
  let l = last r in
  if underused l then expand_symbol t l

and substitute t s r =
  let q = s.prev in
  delete_symbol t s.next;
  delete_symbol t s;
  let ns = fresh (Nonterm r) in
  reuse r;
  insert_after t q ns;
  if not (check t q) then ignore (check t ns)

and expand_symbol t s =
  match s.kind with
  | Nonterm r ->
    let left = s.prev and right = s.next in
    let f = first r and l = last r in
    delete_digram t s;
    s.dead <- true;
    join t left f;
    join t l right;
    deuse t r;
    kill_rule t r;
    if (not (is_guard l)) && not (is_guard right) then
      Hashtbl.replace t.digrams (pack (code_of l) (code_of right)) l;
    if (not (is_guard left)) && not (is_guard f) then
      Hashtbl.replace t.digrams (pack (code_of left) (code_of f)) left
  | _ -> invalid_arg "Sequitur_legacy.expand_symbol: not a non-terminal"

let push t v =
  let s = fresh (Term v) in
  insert_after t (last t.start) s;
  t.input_len <- t.input_len + 1;
  ignore (check t s.prev)

let push_array t a = Array.iter (push t) a

let input_length t = t.input_len

let iter_rhs r f =
  let rec go s = if not (is_guard s) then (f s; go s.next) in
  go (first r)

let fold_rules t init f =
  let ids = Hashtbl.fold (fun id _ acc -> id :: acc) t.live_rules [] in
  let ids = List.sort compare ids in
  List.fold_left (fun acc id -> f acc (Hashtbl.find t.live_rules id)) init ids

let grammar_size t =
  fold_rules t 0 (fun acc r ->
      let n = ref 0 in
      iter_rhs r (fun _ -> incr n);
      acc + !n)

let rule_count t = Hashtbl.length t.live_rules

let byte_size t =
  fold_rules t 0 (fun acc r ->
      let n = ref 1 (* rule separator *) in
      iter_rhs r (fun s -> n := !n + Ormp_util.Bytesize.varint (code_of s));
      acc + !n)

let expand t =
  let out = ref [] in
  let n = ref 0 in
  let rec go r =
    iter_rhs r (fun s ->
        match s.kind with
        | Term v ->
          out := v :: !out;
          incr n
        | Nonterm r2 -> go r2
        | Guard _ -> assert false)
  in
  go t.start;
  let a = Array.make !n 0 in
  List.iteri (fun i v -> a.(!n - 1 - i) <- v) !out;
  a

let rules t =
  List.rev
    (fold_rules t [] (fun acc r ->
         let rhs = ref [] in
         iter_rhs r (fun s ->
             rhs :=
               (match s.kind with
               | Term v -> `T v
               | Nonterm r2 -> `N r2.id
               | Guard _ -> assert false)
               :: !rhs);
         (r.id, List.rev !rhs) :: acc))
