(* Verbatim pre-PR-10 copy of lib/lmad/compressor.ml: the boxed reference
   implementation kept as the equivalence oracle for the zero-allocation
   rewrite (same pattern as sequitur_legacy.ml). Do not modernize. *)
module Lmad = Ormp_lmad.Lmad

type summary = {
  min_v : int array;
  max_v : int array;
  granularity : int array;
  discarded : int;
}

type placement = Extended of int | Opened of int | Discarded

(* An open descriptor under construction.

   [closed] are fully-determined inner levels (innermost first).
   [top_stride]/[top_done] describe the outermost, still-growing level:
   [top_done] complete iterations so far, [partial] points consumed of the
   next iteration. Before the second point arrives, [top_stride] is [None].

   The consumed points, in arrival order, are exactly

     start + (i / inner_size) * top_stride + inner_offset (i mod inner_size)

   for i in [0, inner_size * top_done + partial). *)
type open_desc = {
  o_start : int array;
  mutable o_closed : Lmad.level list;
  mutable o_top_stride : int array option;
  mutable o_top_done : int;
  mutable o_partial : int;
}

type t = {
  dims : int;
  budget : int;
  max_depth : int;
  mutable closed : Lmad.t list; (* reverse creation order *)
  mutable current : open_desc option;
  mutable total : int;
  mutable discarded_count : int;
  mutable sum_min : int array;
  mutable sum_max : int array;
  mutable sum_gran : int array;
  mutable last_discarded : int array option;
}

let default_budget = 30

let create ?(budget = default_budget) ?(max_depth = 3) ~dims () =
  if dims <= 0 then invalid_arg "Compressor.create: dims must be positive";
  if budget <= 0 then invalid_arg "Compressor.create: budget must be positive";
  if max_depth <= 0 then invalid_arg "Compressor.create: max_depth must be positive";
  {
    dims;
    budget;
    max_depth;
    closed = [];
    current = None;
    total = 0;
    discarded_count = 0;
    sum_min = [||];
    sum_max = [||];
    sum_gran = [||];
    last_discarded = None;
  }

(* --- vector helpers ------------------------------------------------- *)

let vsub a b = Array.init (Array.length a) (fun i -> a.(i) - b.(i))

let vequal a b =
  let n = Array.length a in
  let rec go i = i >= n || (a.(i) = b.(i) && go (i + 1)) in
  go 0

(* --- open descriptor ------------------------------------------------ *)

let inner_size od =
  List.fold_left (fun acc (l : Lmad.level) -> acc * l.count) 1 od.o_closed

let inner_offset od idx =
  let p = Array.make (Array.length od.o_start) 0 in
  let rem = ref idx in
  List.iter
    (fun (l : Lmad.level) ->
      let k = !rem mod l.count in
      rem := !rem / l.count;
      for i = 0 to Array.length p - 1 do
        p.(i) <- p.(i) + (k * l.stride.(i))
      done)
    od.o_closed;
  p

let consumed od =
  match od.o_top_stride with
  | None -> 1
  | Some _ -> (inner_size od * od.o_top_done) + od.o_partial

let open_point od i =
  match od.o_top_stride with
  | None -> Array.copy od.o_start
  | Some ts ->
    let isz = inner_size od in
    let off = inner_offset od (i mod isz) in
    Array.init (Array.length od.o_start) (fun d ->
        od.o_start.(d) + (i / isz * ts.(d)) + off.(d))

let open_points od = List.init (consumed od) (open_point od)

(* Try to consume [p]; [true] on success. A mismatch on an iteration
   boundary deepens the descriptor (the growing level is frozen as an inner
   level and a new outer level starts) when depth allows. *)
let add_open ~max_depth od p =
  match od.o_top_stride with
  | None ->
    od.o_top_stride <- Some (vsub p od.o_start);
    od.o_top_done <- 2;
    true
  | Some ts ->
    let expected = open_point od (consumed od) in
    if vequal p expected then begin
      od.o_partial <- od.o_partial + 1;
      if od.o_partial = inner_size od then begin
        od.o_top_done <- od.o_top_done + 1;
        od.o_partial <- 0
      end;
      true
    end
    else if
      od.o_partial = 0 && od.o_top_done >= 2
      && List.length od.o_closed + 2 <= max_depth
      && Array.for_all (fun d -> d >= 0) (vsub p od.o_start)
      (* Only deepen on a forward jump or a reset to the origin: loop nests
         move forward. A backward jump to anywhere else is almost always a
         phase-misaligned hypothesis (e.g. the tail of one inner-loop
         instance paired with the head of the next); locking it in poisons
         every later descriptor of the stream. *)
    then begin
      (* Deepen: freeze the growing level, open a new outer level whose
         stride is the jump from the descriptor origin to this point. *)
      od.o_closed <- od.o_closed @ [ { Lmad.stride = ts; count = od.o_top_done } ];
      od.o_top_stride <- Some (vsub p od.o_start);
      od.o_top_done <- 1;
      od.o_partial <- 1;
      (* A fresh outer iteration of a one-point inner pattern completes
         immediately. *)
      if od.o_partial = inner_size od then begin
        od.o_top_done <- 2;
        od.o_partial <- 0
      end;
      true
    end
    else false

(* Close the descriptor: the complete iterations become the LMAD; the
   pending partial iteration is returned for replay. *)
let finalize od =
  match od.o_top_stride with
  | None -> (Lmad.of_levels ~start:od.o_start ~levels:[], [])
  | Some ts ->
    let levels =
      if od.o_top_done >= 2 then od.o_closed @ [ { Lmad.stride = ts; count = od.o_top_done } ]
      else od.o_closed
    in
    let base = consumed od - od.o_partial in
    let leftover = List.init od.o_partial (fun i -> open_point od (base + i)) in
    (Lmad.of_levels ~start:od.o_start ~levels, leftover)

(* --- summary of discarded points ------------------------------------ *)

let discard t p =
  if t.discarded_count = 0 then begin
    t.sum_min <- Array.copy p;
    t.sum_max <- Array.copy p;
    t.sum_gran <- Array.make t.dims 0
  end
  else begin
    for i = 0 to t.dims - 1 do
      if p.(i) < t.sum_min.(i) then t.sum_min.(i) <- p.(i);
      if p.(i) > t.sum_max.(i) then t.sum_max.(i) <- p.(i)
    done;
    match t.last_discarded with
    | Some prev ->
      for i = 0 to t.dims - 1 do
        t.sum_gran.(i) <- Ormp_util.Stats.gcd t.sum_gran.(i) (p.(i) - prev.(i))
      done
    | None -> ()
  end;
  t.last_discarded <- Some (Array.copy p);
  t.discarded_count <- t.discarded_count + 1

(* --- the compressor -------------------------------------------------- *)

let new_open p =
  { o_start = Array.copy p; o_closed = []; o_top_stride = None; o_top_done = 1; o_partial = 0 }

let lmad_count t = List.length t.closed + match t.current with None -> 0 | Some _ -> 1

(* Place [p], replaying [leftover] (the closed descriptor's pending partial
   iteration) into a fresh descriptor first. Terminates because every
   recursion permanently closes a descriptor holding at least one point. *)
let rec place t leftover p =
  match t.current with
  | None ->
    if lmad_count t < t.budget then begin
      let od = new_open (match leftover with q :: _ -> q | [] -> p) in
      t.current <- Some od;
      (match leftover with
      | [] -> Opened (List.length t.closed)
      | _ :: rest ->
        (* Replaying a prefix of a previously-consumed pattern never
           mismatches: it re-traces the same discovery decisions. *)
        List.iter (fun q -> assert (add_open ~max_depth:t.max_depth od q)) rest;
        if add_open ~max_depth:t.max_depth od p then Opened (List.length t.closed)
        else close_and_retry t p)
    end
    else begin
      List.iter (discard t) leftover;
      discard t p;
      Discarded
    end
  | Some od ->
    if add_open ~max_depth:t.max_depth od p then Extended (List.length t.closed)
    else close_and_retry t p

and close_and_retry t p =
  match t.current with
  | None -> assert false
  | Some od ->
    let lmad, leftover = finalize od in
    t.closed <- lmad :: t.closed;
    t.current <- None;
    place t leftover p

let add t p =
  if Array.length p <> t.dims then invalid_arg "Compressor.add: dimension mismatch";
  t.total <- t.total + 1;
  place t [] p

let lmads t =
  let closed = List.rev t.closed in
  match t.current with
  | None -> closed
  | Some od -> closed @ [ fst (finalize od) ]

let total t = t.total
let discarded t = t.discarded_count
let captured t = t.total - t.discarded_count
let fully_captured t = t.discarded_count = 0

let summary t =
  if t.discarded_count = 0 then None
  else
    Some
      {
        min_v = Array.copy t.sum_min;
        max_v = Array.copy t.sum_max;
        granularity = Array.copy t.sum_gran;
        discarded = t.discarded_count;
      }

let byte_size t =
  let lmad_bytes = List.fold_left (fun acc d -> acc + Lmad.byte_size d) 0 (lmads t) in
  let summary_bytes =
    match summary t with
    | None -> 0
    | Some s ->
      Ormp_util.Bytesize.of_ints (Array.to_list s.min_v)
      + Ormp_util.Bytesize.of_ints (Array.to_list s.max_v)
      + Ormp_util.Bytesize.of_ints (Array.to_list s.granularity)
      + Ormp_util.Bytesize.varint s.discarded
  in
  lmad_bytes + summary_bytes

let reconstruct t =
  let closed = List.concat_map Lmad.points (List.rev t.closed) in
  match t.current with None -> closed | Some od -> closed @ open_points od

type parts = {
  p_dims : int;
  p_budget : int;
  p_max_depth : int;
  p_lmads : Lmad.t list;
  p_total : int;
  p_discarded : int;
  p_summary : summary option;
}

let parts t =
  {
    p_dims = t.dims;
    p_budget = t.budget;
    p_max_depth = t.max_depth;
    p_lmads = lmads t;
    p_total = t.total;
    p_discarded = t.discarded_count;
    p_summary = summary t;
  }

let of_parts p =
  let t = create ~budget:p.p_budget ~max_depth:p.p_max_depth ~dims:p.p_dims () in
  List.iter
    (fun d ->
      if Lmad.dims d <> p.p_dims then invalid_arg "Compressor.of_parts: descriptor dims mismatch")
    p.p_lmads;
  if List.length p.p_lmads > p.p_budget then invalid_arg "Compressor.of_parts: over budget";
  t.closed <- List.rev p.p_lmads;
  t.total <- p.p_total;
  t.discarded_count <- p.p_discarded;
  (match p.p_summary with
  | Some s ->
    if s.discarded <> p.p_discarded then
      invalid_arg "Compressor.of_parts: summary count mismatch";
    t.sum_min <- Array.copy s.min_v;
    t.sum_max <- Array.copy s.max_v;
    t.sum_gran <- Array.copy s.granularity
  | None ->
    if p.p_discarded <> 0 then invalid_arg "Compressor.of_parts: missing summary");
  t

type open_state = {
  s_start : int array;
  s_levels : Lmad.level list;
  s_top_stride : int array option;
  s_top_done : int;
  s_partial : int;
}

type state = {
  s_dims : int;
  s_budget : int;
  s_max_depth : int;
  s_closed : Lmad.t list;
  s_current : open_state option;
  s_total : int;
  s_summary : summary option;
  s_last_discarded : int array option;
}

let state t =
  let open_state od =
    {
      s_start = Array.copy od.o_start;
      s_levels = od.o_closed;
      s_top_stride = Option.map Array.copy od.o_top_stride;
      s_top_done = od.o_top_done;
      s_partial = od.o_partial;
    }
  in
  {
    s_dims = t.dims;
    s_budget = t.budget;
    s_max_depth = t.max_depth;
    s_closed = List.rev t.closed;
    s_current = Option.map open_state t.current;
    s_total = t.total;
    s_summary = summary t;
    s_last_discarded = Option.map Array.copy t.last_discarded;
  }

let of_state s =
  let t = create ~budget:s.s_budget ~max_depth:s.s_max_depth ~dims:s.s_dims () in
  List.iter
    (fun d ->
      if Lmad.dims d <> s.s_dims then invalid_arg "Compressor.of_state: descriptor dims mismatch")
    s.s_closed;
  let open_count = match s.s_current with None -> 0 | Some _ -> 1 in
  if List.length s.s_closed + open_count > s.s_budget then
    invalid_arg "Compressor.of_state: over budget";
  t.closed <- List.rev s.s_closed;
  (match s.s_current with
  | None -> ()
  | Some os ->
    if Array.length os.s_start <> s.s_dims then
      invalid_arg "Compressor.of_state: open descriptor dims mismatch";
    (match os.s_top_stride with
    | Some ts when Array.length ts <> s.s_dims ->
      invalid_arg "Compressor.of_state: open stride dims mismatch"
    | _ -> ());
    t.current <-
      Some
        {
          o_start = Array.copy os.s_start;
          o_closed = os.s_levels;
          o_top_stride = Option.map Array.copy os.s_top_stride;
          o_top_done = os.s_top_done;
          o_partial = os.s_partial;
        });
  t.total <- s.s_total;
  (match s.s_summary with
  | None -> ()
  | Some sum ->
    if sum.discarded <= 0 then invalid_arg "Compressor.of_state: empty summary";
    t.discarded_count <- sum.discarded;
    t.sum_min <- Array.copy sum.min_v;
    t.sum_max <- Array.copy sum.max_v;
    t.sum_gran <- Array.copy sum.granularity);
  t.last_discarded <- Option.map Array.copy s.s_last_discarded;
  t
