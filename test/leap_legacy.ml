(* Verbatim pre-PR-10 copy of the lib/leap/leap.ml collection core: the
   Hashtbl-based collector (plus its sharded form) kept as the equivalence
   oracle for the flat-arena rewrite, the same pattern as
   sequitur_legacy.ml / compressor_legacy.ml. Type equations re-export the
   public profile types from [Ormp_leap.Leap] so oracle profiles flow
   through the real Leap_io/Equiv pipeline. Telemetry calls are dropped
   (counters do not affect profiles); nothing else is modernized. *)

module C = Ormp_lmad.Compressor
module Vec = Ormp_util.Vec

type key = Ormp_leap.Leap.key = { instr : int; group : int }
type span = Ormp_leap.Leap.span = { mutable t_first : int; mutable t_last : int }

type stream = Ormp_leap.Leap.stream = {
  comp : C.t;
  spans : span Vec.t;
  off : C.t;
  mutable dspan : span option;
}

type profile = Ormp_leap.Leap.profile = {
  streams : (key * stream) list;
  store_instrs : (int, bool) Hashtbl.t;
  collected : int;
  wild : int;
  dropped_streams : int;
  dropped_accesses : int;
  elapsed : float;
}

type live = Ormp_leap.Leap.live = {
  lv_streams : (key * stream) list;
  lv_stores : (int * bool) list;
  lv_dropped : key list;
  lv_dropped_accesses : int;
}

let span_at stream idx ~time =
  while Vec.length stream.spans <= idx do
    Vec.push stream.spans { t_first = time; t_last = time }
  done;
  Vec.get stream.spans idx

let record stream ~time point =
  (match C.add stream.comp point with
  | C.Extended idx -> (span_at stream idx ~time).t_last <- time
  | C.Opened idx -> ignore (span_at stream idx ~time)
  | C.Discarded -> (
    match stream.dspan with
    | Some sp -> sp.t_last <- time
    | None -> stream.dspan <- Some { t_first = time; t_last = time }));
  ignore (C.add stream.off [| point.(1) |])

type collector = {
  c_streams : (key, stream) Hashtbl.t;
  c_order : key Vec.t;
  c_store_instrs : (int, bool) Hashtbl.t;
  c_budget : int option;
  c_max_streams : int;
  c_dropped : (key, unit) Hashtbl.t;
  c_dropped_order : key Vec.t;
  mutable c_dropped_accesses : int;
}

let collector ?budget ?(max_streams = 0) ?restore () =
  let c =
    {
      c_streams = Hashtbl.create 256;
      c_order = Vec.create ();
      c_store_instrs = Hashtbl.create 64;
      c_budget = budget;
      c_max_streams = max_streams;
      c_dropped = Hashtbl.create 16;
      c_dropped_order = Vec.create ();
      c_dropped_accesses = 0;
    }
  in
  (match restore with
  | None -> ()
  | Some lv ->
    List.iter
      (fun (k, s) ->
        if Hashtbl.mem c.c_streams k then invalid_arg "Leap.collector: duplicate stream key";
        Hashtbl.replace c.c_streams k s;
        Vec.push c.c_order k)
      lv.lv_streams;
    List.iter (fun (i, st) -> Hashtbl.replace c.c_store_instrs i st) lv.lv_stores;
    List.iter
      (fun k ->
        if not (Hashtbl.mem c.c_dropped k) then begin
          Hashtbl.replace c.c_dropped k ();
          Vec.push c.c_dropped_order k
        end)
      lv.lv_dropped;
    c.c_dropped_accesses <- lv.lv_dropped_accesses);
  c

let collect c (tu : Ormp_core.Tuple.t) =
  Hashtbl.replace c.c_store_instrs tu.instr tu.is_store;
  let key = { instr = tu.instr; group = tu.group } in
  match Hashtbl.find_opt c.c_streams key with
  | Some s -> record s ~time:tu.time [| tu.obj; tu.offset |]
  | None ->
    if c.c_max_streams > 0 && Hashtbl.length c.c_streams >= c.c_max_streams then begin
      if not (Hashtbl.mem c.c_dropped key) then begin
        Hashtbl.replace c.c_dropped key ();
        Vec.push c.c_dropped_order key
      end;
      c.c_dropped_accesses <- c.c_dropped_accesses + 1
    end
    else begin
      let s =
        {
          comp = C.create ?budget:c.c_budget ~dims:2 ();
          spans = Vec.create ();
          off = C.create ?budget:c.c_budget ~dims:1 ();
          dspan = None;
        }
      in
      Hashtbl.replace c.c_streams key s;
      Vec.push c.c_order key;
      record s ~time:tu.time [| tu.obj; tu.offset |]
    end

let stream_count c = Hashtbl.length c.c_streams

let live c =
  {
    lv_streams =
      List.rev (Vec.fold_left (fun acc k -> (k, Hashtbl.find c.c_streams k) :: acc) [] c.c_order);
    lv_stores = List.sort compare (Hashtbl.fold (fun i st acc -> (i, st) :: acc) c.c_store_instrs []);
    lv_dropped = List.rev (Vec.fold_left (fun acc k -> k :: acc) [] c.c_dropped_order);
    lv_dropped_accesses = c.c_dropped_accesses;
  }

let finish c ~collected ~wild ~elapsed =
  {
    streams =
      List.rev (Vec.fold_left (fun acc k -> (k, Hashtbl.find c.c_streams k) :: acc) [] c.c_order);
    store_instrs = c.c_store_instrs;
    collected;
    wild;
    dropped_streams = Hashtbl.length c.c_dropped;
    dropped_accesses = c.c_dropped_accesses;
    elapsed;
  }

(* --- sharded collection ------------------------------------------------ *)

type shard = {
  sh_coll : collector;
  sh_first : (key, int) Hashtbl.t;
}

let shard_make ?budget ?(max_streams = 0) ~nshards ~restore () =
  if nshards < 1 then invalid_arg "Leap.shards: need at least one shard";
  if max_streams > 0 && nshards > 1 then
    invalid_arg "Leap.shards: a max-streams cap requires a single shard";
  match restore with
  | None ->
    Array.init nshards (fun _ ->
        { sh_coll = collector ?budget ~max_streams (); sh_first = Hashtbl.create 64 })
  | Some lv ->
    let parts = Array.init nshards (fun _ -> ref []) in
    List.iteri
      (fun i ((k : key), s) -> let r = parts.(k.instr mod nshards) in r := (i, k, s) :: !r)
      lv.lv_streams;
    Array.init nshards (fun w ->
        let mine = List.rev !(parts.(w)) in
        let sub =
          {
            lv_streams = List.map (fun (_, k, s) -> (k, s)) mine;
            lv_stores = List.filter (fun (i, _) -> i mod nshards = w) lv.lv_stores;
            lv_dropped = (if w = 0 then lv.lv_dropped else []);
            lv_dropped_accesses = (if w = 0 then lv.lv_dropped_accesses else 0);
          }
        in
        let sh_first = Hashtbl.create 64 in
        List.iter (fun (i, k, _) -> Hashtbl.replace sh_first k i) mine;
        { sh_coll = collector ?budget ~max_streams ~restore:sub (); sh_first })

let shards ?budget ?max_streams ?restore ~nshards () =
  shard_make ?budget ?max_streams ~nshards ~restore ()

let shard_index ~nshards instr = instr mod nshards

let shard_collect sh (tu : Ormp_core.Tuple.t) =
  let key = { instr = tu.instr; group = tu.group } in
  let known = Hashtbl.mem sh.sh_coll.c_streams key in
  collect sh.sh_coll tu;
  if (not known) && Hashtbl.mem sh.sh_coll.c_streams key then
    Hashtbl.replace sh.sh_first key tu.time

let shards_stream_count shs =
  Array.fold_left (fun acc sh -> acc + stream_count sh.sh_coll) 0 shs

let merge_streams shs =
  Array.to_list shs
  |> List.concat_map (fun sh ->
         List.rev
           (Vec.fold_left
              (fun acc k ->
                (Hashtbl.find sh.sh_first k, k, Hashtbl.find sh.sh_coll.c_streams k) :: acc)
              [] sh.sh_coll.c_order))
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  |> List.map (fun (_, k, s) -> (k, s))

let merge_stores shs =
  let h = Hashtbl.create 64 in
  Array.iter
    (fun sh -> Hashtbl.iter (fun i st -> Hashtbl.replace h i st) sh.sh_coll.c_store_instrs)
    shs;
  h

let shards_live shs =
  {
    lv_streams = merge_streams shs;
    lv_stores =
      List.sort compare (Hashtbl.fold (fun i st acc -> (i, st) :: acc) (merge_stores shs) []);
    lv_dropped =
      Array.to_list shs
      |> List.concat_map (fun sh ->
             List.rev (Vec.fold_left (fun acc k -> k :: acc) [] sh.sh_coll.c_dropped_order));
    lv_dropped_accesses =
      Array.fold_left (fun acc sh -> acc + sh.sh_coll.c_dropped_accesses) 0 shs;
  }

let shards_finish shs ~collected ~wild ~elapsed =
  let dropped_streams =
    Array.fold_left (fun acc sh -> acc + Hashtbl.length sh.sh_coll.c_dropped) 0 shs
  in
  let dropped_accesses =
    Array.fold_left (fun acc sh -> acc + sh.sh_coll.c_dropped_accesses) 0 shs
  in
  {
    streams = merge_streams shs;
    store_instrs = merge_stores shs;
    collected;
    wild;
    dropped_streams;
    dropped_accesses;
    elapsed;
  }
