open Ormp_leap
open Ormp_vm
open Ormp_trace

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A maximally regular workload: every stream is a handful of LMADs. *)
let strided = Ormp_workloads.Micro.array_stride ~elems:256 ~stride:8 ~sweeps:4 ()

(* ------------------------------------------------------------------ *)
(* Profile structure and sample quality                                *)
(* ------------------------------------------------------------------ *)

let test_profile_structure () =
  let p = Leap.profile strided in
  check_bool "streams exist" true (List.length p.Leap.streams > 0);
  check_bool "collected accesses" true (p.Leap.collected > 0);
  check_int "wild" 0 p.Leap.wild;
  let ld = List.filter (fun i -> not (Leap.is_store p i)) (Leap.instrs p) in
  let st = List.filter (Leap.is_store p) (Leap.instrs p) in
  check_bool "loads classified" true (ld = Leap.loads p);
  check_bool "stores classified" true (st = Leap.stores p)

let test_fully_regular_capture () =
  let p = Leap.profile strided in
  Alcotest.(check (float 1e-9)) "all accesses captured" 1.0 (Leap.accesses_captured p);
  Alcotest.(check (float 1e-9)) "all instructions captured" 1.0 (Leap.instructions_captured p)

let test_instr_totals_sum_to_collected () =
  let p = Leap.profile (Ormp_workloads.Micro.linked_list ()) in
  let sum = List.fold_left (fun acc i -> acc + Leap.instr_total p i) 0 (Leap.instrs p) in
  check_int "totals partition the collected stream" p.Leap.collected sum

let test_budget_reduces_capture () =
  let irregular = Ormp_workloads.Micro.hash_probe ~buckets:512 ~ops:2048 () in
  let p_small = Leap.profile ~budget:2 irregular in
  let p_big = Leap.profile ~budget:200 irregular in
  check_bool "bigger budget captures at least as much" true
    (Leap.accesses_captured p_big >= Leap.accesses_captured p_small);
  check_bool "irregular stream is lossy at small budget" true
    (Leap.accesses_captured p_small < 1.0)

let test_compression_ratio () =
  let p = Leap.profile strided in
  check_bool "well above 1x on regular streams" true (Leap.compression_ratio p > 10.0);
  check_bool "byte size positive" true (Leap.byte_size p > 0)

let test_spans_ordered () =
  let p = Leap.profile (Ormp_workloads.Micro.linked_list ()) in
  List.iter
    (fun (_, (s : Leap.stream)) ->
      Ormp_util.Vec.iter
        (fun (sp : Leap.span) ->
          check_bool "span ordered" true (sp.Leap.t_first <= sp.Leap.t_last))
        s.Leap.spans;
      check_int "one span per descriptor" (Ormp_util.Vec.length s.Leap.spans)
        (List.length (Ormp_lmad.Compressor.lmads s.Leap.comp)))
    p.Leap.streams

let test_object_relative_invariance () =
  (* The LEAP profile (a lossy object-relative profile) must also be
     invariant to allocator choice. *)
  let mk config = Leap.profile ~config (Ormp_workloads.Micro.linked_list ()) in
  let render p =
    List.map
      (fun (k, (s : Leap.stream)) ->
        ( k.Leap.instr,
          k.Leap.group,
          List.map (Format.asprintf "%a" Ormp_lmad.Lmad.pp)
            (Ormp_lmad.Compressor.lmads s.Leap.comp) ))
      p.Leap.streams
  in
  let base = render (mk Config.default) in
  List.iter
    (fun c -> check_bool "identical LMADs" true (render (mk c) = base))
    (Config.variants Config.default)

(* ------------------------------------------------------------------ *)
(* MDF post-processor                                                  *)
(* ------------------------------------------------------------------ *)

(* Hand-built program with an exactly-known dependence structure. *)
let raw_program ~n =
  Program.make ~name:"raw" ~description:"store array then load it twice" (fun e ->
      let site = Engine.instr e ~name:"r.alloc" Instr.Alloc_site in
      let st_a = Engine.instr e ~name:"r.st" Instr.Store in
      let ld_hit = Engine.instr e ~name:"r.ld_hit" Instr.Load in
      let ld_half = Engine.instr e ~name:"r.ld_half" Instr.Load in
      let ld_miss = Engine.instr e ~name:"r.ld_miss" Instr.Load in
      let a = Engine.alloc e ~site (2 * n * 8) in
      for i = 0 to n - 1 do
        Engine.store e ~instr:st_a a (i * 8)
      done;
      for i = 0 to n - 1 do
        (* reads exactly the stored range *)
        Engine.load e ~instr:ld_hit a (i * 8);
        (* reads stored range for even i, unwritten range for odd i *)
        Engine.load e ~instr:ld_half a (if i mod 2 = 0 then i * 8 else (n + i) * 8);
        (* reads only the unwritten half *)
        Engine.load e ~instr:ld_miss a ((n + i) * 8)
      done)

let find_deps p = Mdf.compute p

let test_mdf_exact_frequencies () =
  let p = Leap.profile (raw_program ~n:64) in
  let deps = find_deps p in
  (* instruction ids: 0 alloc, 1 st, 2 ld_hit, 3 ld_half, 4 ld_miss *)
  let f ld = Ormp_baselines.Dep_types.find deps ~store:1 ~load:ld in
  Alcotest.(check (float 0.01)) "full dependence" 1.0 (f 2);
  Alcotest.(check (float 0.01)) "half dependence" 0.5 (f 3);
  Alcotest.(check (float 0.01)) "no dependence" 0.0 (f 4)

let test_mdf_respects_time_order () =
  let prog =
    Program.make ~name:"rev" ~description:"load everything before any store" (fun e ->
        let site = Engine.instr e ~name:"v.alloc" Instr.Alloc_site in
        let ld = Engine.instr e ~name:"v.ld" Instr.Load in
        let st = Engine.instr e ~name:"v.st" Instr.Store in
        let a = Engine.alloc e ~site 512 in
        for i = 0 to 63 do
          Engine.load e ~instr:ld a (i * 8)
        done;
        for i = 0 to 63 do
          Engine.store e ~instr:st a (i * 8)
        done)
  in
  let deps = find_deps (Leap.profile prog) in
  Alcotest.(check (float 1e-9)) "no anti-dependence reported" 0.0
    (Ormp_baselines.Dep_types.find deps ~store:2 ~load:1)

let test_mdf_groups_do_not_alias () =
  let prog =
    Program.make ~name:"grp" ~description:"store one group, load another" (fun e ->
        let site_a = Engine.instr e ~name:"g.alloc_a" Instr.Alloc_site in
        let site_b = Engine.instr e ~name:"g.alloc_b" Instr.Alloc_site in
        let st = Engine.instr e ~name:"g.st" Instr.Store in
        let ld = Engine.instr e ~name:"g.ld" Instr.Load in
        let a = Engine.alloc e ~site:site_a 512 in
        let b = Engine.alloc e ~site:site_b 512 in
        for i = 0 to 63 do
          Engine.store e ~instr:st a (i * 8);
          Engine.load e ~instr:ld b (i * 8)
        done)
  in
  let deps = find_deps (Leap.profile prog) in
  check_int "no cross-group dependence" 0 (List.length deps)

let test_mdf_close_to_truth_on_suite () =
  (* Sanity bound on a real workload: on mostly-regular workloads most
     pairs should be within 25 points of the lossless truth. *)
  let program = raw_program ~n:128 in
  let truth = Ormp_baselines.Lossless_dep.profile program in
  let td = Ormp_baselines.Lossless_dep.deps truth in
  let ld = find_deps (Leap.profile program) in
  List.iter
    (fun (s, l) ->
      let e =
        Ormp_baselines.Dep_types.find ld ~store:s ~load:l
        -. Ormp_baselines.Dep_types.find td ~store:s ~load:l
      in
      check_bool "within 25 points" true (abs_float e <= 0.25))
    (Ormp_baselines.Dep_types.pairs [ td; ld ])

(* ------------------------------------------------------------------ *)
(* Stride post-processor                                               *)
(* ------------------------------------------------------------------ *)

let test_strides_on_strided_workload () =
  let p = Leap.profile strided in
  let strong = Strides.strongly_strided p in
  (* both the load and the store of the sweep are strided by 8 *)
  check_int "two strongly-strided instructions" 2 (List.length strong);
  List.iter (fun (_, s) -> check_int "stride is 8" 8 s) strong

let test_strides_none_on_random () =
  let p = Leap.profile (Ormp_workloads.Micro.hash_probe ~buckets:512 ~ops:2048 ()) in
  List.iter
    (fun (i, s) ->
      (* the only acceptable strong stride in a hash probe is the trivial
         re-probe stride 8 or 0; anything else is a detector bug *)
      check_bool (Printf.sprintf "instr %d stride %d plausible" i s) true (s = 8 || s = 0))
    (Strides.strongly_strided p)

let test_strides_threshold () =
  let p = Leap.profile strided in
  check_bool "lax threshold finds at least as many" true
    (List.length (Strides.strongly_strided ~threshold:0.1 p)
    >= List.length (Strides.strongly_strided ~threshold:0.9 p))

let test_stride_weights_visible () =
  let p = Leap.profile strided in
  let lds = Leap.loads p in
  check_bool "has loads" true (lds <> []);
  let w = Strides.stride_weights p (List.hd lds) in
  check_bool "weights non-empty" true (w <> []);
  check_bool "dominant weight is stride 8" true (fst (List.hd w) = 8)

let test_mdf_no_false_aliasing_across_reuse () =
  (* Store to an object, free it, allocate a new object at the SAME raw
     address, load from the new one: the raw-address baseline fabricates a
     dependence (address reuse), the object-relative profile correctly
     refuses it — the false-aliasing problem the paper contrasts with
     Rubin et al. *)
  let prog =
    Program.make ~name:"reuse" ~description:"store, free, realloc, load" (fun e ->
        let site = Engine.instr e ~name:"u.alloc" Instr.Alloc_site in
        let fsite = Engine.instr e ~name:"u.free" Instr.Free_site in
        let st = Engine.instr e ~name:"u.st" Instr.Store in
        let ld = Engine.instr e ~name:"u.ld" Instr.Load in
        for _ = 1 to 32 do
          let a = Engine.alloc e ~site 32 in
          Engine.store e ~instr:st a 0;
          Engine.free e ~site:fsite a;
          let b = Engine.alloc e ~site 32 in
          check_bool "first-fit reuses the address" true (Engine.addr b = Engine.addr a);
          Engine.load e ~instr:ld b 0;
          Engine.free e ~site:fsite b
        done)
  in
  let truth = Ormp_baselines.Lossless_dep.create () in
  let leap_sink, leap_fin = Leap.sink ~site_name:(Printf.sprintf "s%d") () in
  let result =
    Runner.run prog
      (Ormp_trace.Sink.fanout [ leap_sink; Ormp_baselines.Lossless_dep.sink truth ])
  in
  let leap = leap_fin ~elapsed:result.Runner.elapsed in
  (* ids: 0 alloc, 1 free, 2 st, 3 ld *)
  Alcotest.(check (float 1e-9))
    "raw baseline fabricates a 100% dependence" 1.0
    (Ormp_baselines.Dep_types.find (Ormp_baselines.Lossless_dep.deps truth) ~store:2 ~load:3);
  Alcotest.(check (float 1e-9))
    "object-relative profile refuses it" 0.0
    (Ormp_baselines.Dep_types.find (Mdf.compute leap) ~store:2 ~load:3)

let test_leap_on_churn_uses_serials () =
  (* Reused addresses must appear as fresh serials in the object dim. *)
  let p = Leap.profile (Ormp_workloads.Micro.churn ~live:4 ~ops:256 ()) in
  let max_serial =
    List.fold_left
      (fun acc (_, (s : Leap.stream)) ->
        List.fold_left
          (fun acc d ->
            List.fold_left (fun acc pt -> max acc pt.(0)) acc (Ormp_lmad.Lmad.points d))
          acc
          (Ormp_lmad.Compressor.lmads s.Leap.comp))
      0 p.Leap.streams
  in
  check_bool "serials exceed the live-slot count" true (max_serial >= 4)

(* ------------------------------------------------------------------ *)
(* Alias queries                                                       *)
(* ------------------------------------------------------------------ *)

let alias_program =
  Program.make ~name:"alias" ~description:"overlapping and disjoint access sets" (fun e ->
      let site = Engine.instr e ~name:"al.alloc" Instr.Alloc_site in
      let ld_all = Engine.instr e ~name:"al.ld_all" Instr.Load in
      let ld_even = Engine.instr e ~name:"al.ld_even" Instr.Load in
      let ld_odd = Engine.instr e ~name:"al.ld_odd" Instr.Load in
      let a = Engine.alloc e ~site 1024 in
      for i = 0 to 127 do
        Engine.load e ~instr:ld_all a (i * 8)
      done;
      for i = 0 to 63 do
        Engine.load e ~instr:ld_even a (i * 16);
        Engine.load e ~instr:ld_odd a ((i * 16) + 8)
      done)

let test_alias_rates () =
  let p = Leap.profile alias_program in
  (* ids: 0 alloc, 1 ld_all, 2 ld_even, 3 ld_odd *)
  check_bool "even/odd disjoint" false (Alias.may_alias p ~a:2 ~b:3);
  check_bool "all/even overlap" true (Alias.may_alias p ~a:1 ~b:2);
  Alcotest.(check (float 0.01)) "even fully inside all" 1.0 (Alias.alias_rate p ~a:1 ~b:2);
  Alcotest.(check (float 0.01)) "all covered half by even" 0.5 (Alias.alias_rate p ~a:2 ~b:1);
  Alcotest.(check (float 0.01)) "disjoint rate" 0.0 (Alias.alias_rate p ~a:2 ~b:3)

let test_alias_rates_listing () =
  let p = Leap.profile alias_program in
  let rs = Alias.rates p in
  check_bool "symmetric max reported" true
    (List.exists (fun (a, b, r) -> a = 1 && b = 2 && r > 0.99) rs);
  check_bool "disjoint pair absent" true
    (not (List.exists (fun (a, b, _) -> a = 2 && b = 3) rs))

let test_alias_different_groups_never () =
  let prog =
    Program.make ~name:"alias2" ~description:"two groups" (fun e ->
        let s1 = Engine.instr e ~name:"g1.alloc" Instr.Alloc_site in
        let s2 = Engine.instr e ~name:"g2.alloc" Instr.Alloc_site in
        let l1 = Engine.instr e ~name:"g1.ld" Instr.Load in
        let l2 = Engine.instr e ~name:"g2.ld" Instr.Load in
        let a = Engine.alloc e ~site:s1 64 in
        let b = Engine.alloc e ~site:s2 64 in
        for i = 0 to 7 do
          Engine.load e ~instr:l1 a (i * 8);
          Engine.load e ~instr:l2 b (i * 8)
        done)
  in
  let p = Leap.profile prog in
  check_bool "cross-group never aliases" false (Alias.may_alias p ~a:2 ~b:3)

(* ------------------------------------------------------------------ *)
(* Flat collector vs. legacy copy                                      *)
(* ------------------------------------------------------------------ *)

(* The PR 10 flat-arena collector against the verbatim pre-rewrite
   Hashtbl collector (leap_legacy.ml): identical tuple streams must give
   byte-identical profiles — through the persistence sexp, so stream
   order, LMADs, summaries, spans, store flags and dropped-key state are
   all covered — and identical post-processor output. The legacy copy
   shares the (independently proven) flat compressor, so these
   properties isolate the collection layer: key tables, admission order,
   sharded merge, caps, and checkpoint restore. *)

let profile_bytes p = Ormp_util.Sexp.to_string (Ormp_persist.Leap_io.to_sexp p)

(* Random tuple streams with enough regular structure to exercise every
   compressor arm: strided runs (one key sweeping offsets), plus random
   singles. [is_store] is a function of the instruction id and time is
   the stream position, as in a real collected trace. *)
let render_segs segs =
  let out = ref [] in
  let time = ref 0 in
  let push instr group obj offset =
    out :=
      { Ormp_core.Tuple.instr; group; obj; offset; time = !time; is_store = instr land 1 = 1 }
      :: !out;
    incr time
  in
  List.iter
    (fun seg ->
      match seg with
      | `Run (instr, group, obj, start, stride, count) ->
        for i = 0 to count - 1 do
          push instr group obj (start + (i * stride))
        done
      | `Rand l -> List.iter (fun (instr, group, obj, offset) -> push instr group obj offset) l)
    segs;
  Array.of_list (List.rev !out)

let gen_seg =
  QCheck.Gen.(
    frequency
      [
        ( 4,
          map
            (fun ((instr, group), (obj, start), (stride, count)) ->
              `Run (instr, group, obj, start, stride, count))
            (triple
               (pair (int_range 0 5) (int_range 0 3))
               (pair (int_range 0 3) (int_range 0 32))
               (pair (int_range 1 12) (int_range 2 24))) );
        ( 2,
          map
            (fun l -> `Rand l)
            (list_size (int_range 1 12)
               (quad (int_range 0 5) (int_range 0 3) (int_range 0 3) (int_range 0 64))) );
      ])

let print_segs segs =
  String.concat ";"
    (List.map
       (function
         | `Run (i, g, o, s, st, c) -> Printf.sprintf "run(%d,%d,%d,%d,%d,%d)" i g o s st c
         | `Rand l -> Printf.sprintf "rand(%d)" (List.length l))
       segs)

let arb_stream =
  QCheck.make ~print:print_segs QCheck.Gen.(list_size (int_range 1 16) gen_seg)

let arb_budget = QCheck.make QCheck.Gen.(opt (int_range 1 8))

let legacy_profile ?budget ?max_streams tuples =
  let c = Leap_legacy.collector ?budget ?max_streams () in
  Array.iter (Leap_legacy.collect c) tuples;
  Leap_legacy.finish c ~collected:(Array.length tuples) ~wild:0 ~elapsed:0.0

let finish_flat c tuples = Leap.finish c ~collected:(Array.length tuples) ~wild:0 ~elapsed:0.0

(* Post-processors on both profiles: the issue's "strides, MDF pairs,
   alias sets" equivalence. *)
let post_eq ~ctx pa pb =
  QCheck.assume (pa.Leap.streams <> []);
  if Mdf.compute pa <> Mdf.compute pb then QCheck.Test.fail_reportf "%s: mdf differs" ctx;
  if Alias.rates pa <> Alias.rates pb then QCheck.Test.fail_reportf "%s: alias differs" ctx;
  List.iter
    (fun i ->
      if Strides.stride_weights pa i <> Strides.stride_weights pb i then
        QCheck.Test.fail_reportf "%s: stride weights differ (instr %d)" ctx i)
    (Leap.instrs pa);
  if Strides.strongly_strided pa <> Strides.strongly_strided pb then
    QCheck.Test.fail_reportf "%s: strongly_strided differs" ctx;
  true

let eq_or_fail ~ctx pa pb =
  let a = profile_bytes pa and b = profile_bytes pb in
  if a <> b then QCheck.Test.fail_reportf "%s: profiles differ@.flat:   %s@.legacy: %s" ctx a b;
  true

(* Serial: per-tuple flat, lane-batched flat, and the legacy oracle all
   byte-identical; post-processors agree. *)
let prop_flat_eq_legacy =
  QCheck.Test.make ~name:"flat collector = legacy (serial + lanes)" ~count:120
    QCheck.(pair arb_stream arb_budget)
  @@ fun (segs, budget) ->
  let tuples = render_segs segs in
  let oracle = legacy_profile ?budget tuples in
  let c_serial = Leap.collector ?budget () in
  Array.iter (Leap.collect c_serial) tuples;
  let c_lanes = Leap.collector ?budget () in
  let n = Array.length tuples in
  let pos = ref 0 in
  while !pos < n do
    let len = min (1 + (!pos mod 7)) (n - !pos) in
    let sub f = Array.init len (fun i -> f tuples.(!pos + i)) in
    Leap.collect_lanes c_lanes
      ~instr:(sub (fun tu -> tu.Ormp_core.Tuple.instr))
      ~group:(sub (fun tu -> tu.Ormp_core.Tuple.group))
      ~obj:(sub (fun tu -> tu.Ormp_core.Tuple.obj))
      ~offset:(sub (fun tu -> tu.Ormp_core.Tuple.offset))
      ~store:(sub (fun tu -> if tu.Ormp_core.Tuple.is_store then 1 else 0))
      ~time0:!pos ~len;
    pos := !pos + len
  done;
  let pa = finish_flat c_serial tuples in
  let pl = finish_flat c_lanes tuples in
  eq_or_fail ~ctx:"serial" pa oracle
  && eq_or_fail ~ctx:"lanes" pl oracle
  && post_eq ~ctx:"post" pa oracle

(* Sharded collection across jobs counts: the merged profile (admission
   order re-sorted on first-seen stamps) equals the serial legacy one. *)
let prop_sharded_eq_legacy =
  QCheck.Test.make ~name:"sharded flat = serial legacy (jobs 1-4)" ~count:60
    QCheck.(triple arb_stream arb_budget (int_range 1 4))
  @@ fun (segs, budget, nshards) ->
  let tuples = render_segs segs in
  let oracle = legacy_profile ?budget tuples in
  (* per-tuple shard feed *)
  let shs = Leap.shards ?budget ~nshards () in
  Array.iter
    (fun tu ->
      Leap.shard_collect shs.(Leap.shard_index ~nshards tu.Ormp_core.Tuple.instr) tu)
    tuples;
  let pa = Leap.shards_finish shs ~collected:(Array.length tuples) ~wild:0 ~elapsed:0.0 in
  (* lane shard feed, chunked like Par_leap stages *)
  let shs2 = Leap.shards ?budget ~nshards () in
  let n = Array.length tuples in
  let pos = ref 0 in
  while !pos < n do
    let len = min (1 + (!pos mod 9)) (n - !pos) in
    for w = 0 to nshards - 1 do
      let mine = ref [] in
      for i = len - 1 downto 0 do
        let tu = tuples.(!pos + i) in
        if Leap.shard_index ~nshards tu.Ormp_core.Tuple.instr = w then mine := tu :: !mine
      done;
      let mine = Array.of_list !mine in
      let k = Array.length mine in
      if k > 0 then
        Leap.shard_collect_lanes shs2.(w)
          ~instr:(Array.map (fun tu -> tu.Ormp_core.Tuple.instr) mine)
          ~group:(Array.map (fun tu -> tu.Ormp_core.Tuple.group) mine)
          ~obj:(Array.map (fun tu -> tu.Ormp_core.Tuple.obj) mine)
          ~offset:(Array.map (fun tu -> tu.Ormp_core.Tuple.offset) mine)
          ~store:(Array.map (fun tu -> if tu.Ormp_core.Tuple.is_store then 1 else 0) mine)
          ~time:(Array.map (fun tu -> tu.Ormp_core.Tuple.time) mine)
          ~len:k
    done;
    pos := !pos + len
  done;
  let pb = Leap.shards_finish shs2 ~collected:(Array.length tuples) ~wild:0 ~elapsed:0.0 in
  eq_or_fail ~ctx:"shards" pa oracle && eq_or_fail ~ctx:"shard lanes" pb oracle

(* A stream cap: admission refusals, dropped counts and established
   streams must match the legacy collector exactly. *)
let prop_capped_eq_legacy =
  QCheck.Test.make ~name:"max_streams cap = legacy" ~count:80
    QCheck.(triple arb_stream arb_budget (int_range 1 6))
  @@ fun (segs, budget, cap) ->
  let tuples = render_segs segs in
  let oracle = legacy_profile ?budget ~max_streams:cap tuples in
  let c = Leap.collector ?budget ~max_streams:cap () in
  Array.iter (Leap.collect c) tuples;
  let lva = Leap.live c in
  let lvb = Leap_legacy.live (let c = Leap_legacy.collector ?budget ~max_streams:cap () in
                              Array.iter (Leap_legacy.collect c) tuples;
                              c)
  in
  if lva.Leap.lv_dropped <> lvb.Leap.lv_dropped then
    QCheck.Test.fail_report "dropped key order differs";
  if lva.Leap.lv_dropped_accesses <> lvb.Leap.lv_dropped_accesses then
    QCheck.Test.fail_report "dropped access count differs";
  eq_or_fail ~ctx:"capped" (finish_flat c tuples) oracle

(* Checkpoint/restore mid-stream — into a serial collector and into a
   sharded set — continues byte-for-byte like an uninterrupted run. *)
let prop_restore_eq_legacy =
  QCheck.Test.make ~name:"restore resumes like legacy" ~count:60
    QCheck.(quad arb_stream arb_budget (int_range 0 1000) (int_range 1 3))
  @@ fun (segs, budget, cut_raw, nshards) ->
  let tuples = render_segs segs in
  let n = Array.length tuples in
  let cut = if n = 0 then 0 else cut_raw mod (n + 1) in
  let oracle = legacy_profile ?budget tuples in
  let c1 = Leap.collector ?budget () in
  Array.iteri (fun i tu -> if i < cut then Leap.collect c1 tu) tuples;
  let lv = Leap.live c1 in
  (* serial restore *)
  let c2 = Leap.collector ?budget ~restore:lv () in
  Array.iteri (fun i tu -> if i >= cut then Leap.collect c2 tu) tuples;
  let ok1 = eq_or_fail ~ctx:"restore serial" (finish_flat c2 tuples) oracle in
  (* sharded restore: replay the prefix, snapshot, spread over shards *)
  let c3 = Leap.collector ?budget () in
  Array.iteri (fun i tu -> if i < cut then Leap.collect c3 tu) tuples;
  let shs = Leap.shards ?budget ~nshards ~restore:(Leap.live c3) () in
  Array.iteri
    (fun i tu ->
      if i >= cut then
        Leap.shard_collect shs.(Leap.shard_index ~nshards tu.Ormp_core.Tuple.instr) tu)
    tuples;
  let pb = Leap.shards_finish shs ~collected:n ~wild:0 ~elapsed:0.0 in
  ok1 && eq_or_fail ~ctx:"restore shards" pb oracle

(* Steady-state allocation witness: once streams exist and descriptors
   are extending, the collector allocates nothing per event. The 2-word
   budget in the issue covers the amortized cost of opening descriptors;
   the pure extension path must be flat zero. *)
let test_collect_lanes_alloc_free () =
  let c = Leap.collector () in
  let n = 4096 in
  let instr = Array.make n 3 in
  let group = Array.make n 1 in
  let obj = Array.make n 0 in
  let store = Array.make n 0 in
  let offset = Array.init n (fun i -> i * 8) in
  (* warm-up: admit the stream, open its descriptor, grow the tables *)
  Leap.collect_lanes c ~instr ~group ~obj ~offset ~store ~time0:0 ~len:n;
  let offset2 = Array.init n (fun i -> (n + i) * 8) in
  let w0 = Gc.minor_words () in
  Leap.collect_lanes c ~instr ~group ~obj ~offset:offset2 ~store ~time0:n ~len:n;
  let w1 = Gc.minor_words () in
  let per_event = (w1 -. w0) /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "steady-state words/event %.4f <= 0.01" per_event)
    true (per_event <= 0.01)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "ormp_leap"
    [
      ( "flat vs legacy",
        [
          qt prop_flat_eq_legacy;
          qt prop_sharded_eq_legacy;
          qt prop_capped_eq_legacy;
          qt prop_restore_eq_legacy;
          tc "steady-state collection is allocation-free" test_collect_lanes_alloc_free;
        ] );
      ( "profile",
        [
          tc "structure" test_profile_structure;
          tc "fully regular capture" test_fully_regular_capture;
          tc "instr totals partition" test_instr_totals_sum_to_collected;
          tc "budget reduces capture" test_budget_reduces_capture;
          tc "compression ratio" test_compression_ratio;
          tc "spans ordered" test_spans_ordered;
          tc "object-relative invariance" test_object_relative_invariance;
        ] );
      ( "mdf",
        [
          tc "exact frequencies" test_mdf_exact_frequencies;
          tc "respects time order" test_mdf_respects_time_order;
          tc "groups do not alias" test_mdf_groups_do_not_alias;
          tc "close to truth" test_mdf_close_to_truth_on_suite;
          tc "no false aliasing across address reuse" test_mdf_no_false_aliasing_across_reuse;
          tc "churn uses serials" test_leap_on_churn_uses_serials;
        ] );
      ( "strides",
        [
          tc "strided workload" test_strides_on_strided_workload;
          tc "random workload" test_strides_none_on_random;
          tc "threshold monotone" test_strides_threshold;
          tc "weights visible" test_stride_weights_visible;
        ] );
      ( "alias",
        [
          tc "rates" test_alias_rates;
          tc "rates listing" test_alias_rates_listing;
          tc "different groups never alias" test_alias_different_groups_never;
        ] );
    ]
