(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation (CGO 2004, §3.2 and §4.2), the design-choice ablations called
   out in DESIGN.md, and a set of Bechamel micro-benchmarks for the core
   data structures.

   Usage:
     main.exe                 -- everything, at paper ("training input") scale
     main.exe --fast          -- everything, at the small test scale
     main.exe fig5 table1 ... -- only the named sections
   Section names: fig5 fig6 fig7 fig8 fig9 table1 ablations extensions micro *)

open Ormp_report

let section_names =
  [ "fig5"; "fig6"; "fig7"; "fig8"; "fig9"; "table1"; "ablations"; "extensions"; "micro" ]

let parse_args () =
  let args = List.tl (Array.to_list Sys.argv) in
  let fast = List.mem "--fast" args in
  let wanted = List.filter (fun a -> a <> "--fast") args in
  List.iter
    (fun w ->
      if not (List.mem w section_names) then begin
        Printf.eprintf "unknown section %S (known: %s)\n" w (String.concat " " section_names);
        exit 2
      end)
    wanted;
  let enabled name = wanted = [] || List.mem name wanted in
  (fast, enabled)

let timed name f =
  let t0 = Sys.time () in
  let r = f () in
  Printf.printf "[%s took %.1fs]\n\n%!" name (Sys.time () -. t0);
  r

(* ------------------------------------------------------------------ *)
(* Paper sections                                                      *)
(* ------------------------------------------------------------------ *)

let run_fig5 ~bench () =
  timed "fig5" (fun () -> print_string (Experiments.render_fig5 (Experiments.fig5 ~bench ())))

let run_dependence_figs ~bench ~enabled () =
  let needs = List.exists enabled [ "fig6"; "fig7"; "fig8"; "fig9"; "table1" ] in
  if needs then begin
    let suites = timed "instrumented runs (shared)" (fun () -> Experiments.run_suites ~bench ()) in
    if enabled "fig6" then
      print_string
        (Experiments.render_dist
           ~title:"Figure 6: error distribution of the LEAP memory-dependence results"
           (Experiments.fig6 suites));
    if enabled "fig7" then
      print_string
        (Experiments.render_dist
           ~title:"Figure 7: error distribution of the Connors memory-dependence results"
           (Experiments.fig7 suites));
    if enabled "fig8" then print_string (Experiments.render_fig8 (Experiments.fig8 suites));
    if enabled "fig9" then print_string (Experiments.render_fig9 (Experiments.fig9 suites));
    if enabled "table1" then
      timed "table1 (dilation reruns)" (fun () ->
          print_string (Experiments.render_table1 (Experiments.table1 ~bench suites)))
  end

let run_ablations ~bench () =
  timed "ablations" (fun () ->
      let mcf = Ormp_workloads.Registry.find "181.mcf-like" in
      let gzip = Ormp_workloads.Registry.find "164.gzip-like" in
      print_string
        (Experiments.render_budget ~workload:mcf.Ormp_workloads.Registry.name
           (Experiments.ablation_lmad_budget ~bench mcf));
      print_string
        (Experiments.render_budget ~workload:gzip.Ormp_workloads.Registry.name
           (Experiments.ablation_lmad_budget ~bench gzip));
      print_string
        (Experiments.render_window ~workload:gzip.Ormp_workloads.Registry.name
           (Experiments.ablation_connors_window ~bench gzip));
      print_string (Experiments.render_fused (Experiments.ablation_no_decomposition ~bench ()));
      print_string (Experiments.render_grouping (Experiments.ablation_grouping ~bench ()));
      print_string (Experiments.render_pool (Experiments.ablation_pool_handling ~bench ())))

let run_extensions ~bench () =
  timed "extensions" (fun () ->
      print_string (Experiments.render_phases (Experiments.extension_phases ~bench ())))

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let open Bechamel in
  let rng = Ormp_util.Prng.create ~seed:42 in
  (* Pre-built inputs so the benchmarks measure steady-state operations. *)
  let repetitive = Array.init 4096 (fun i -> i mod 7) in
  let scattered = Array.init 4096 (fun _ -> Ormp_util.Prng.int rng 100000) in
  let seq_push name input =
    Test.make ~name
      (Staged.stage (fun () ->
           let s = Ormp_sequitur.Sequitur.create () in
           Array.iter (Ormp_sequitur.Sequitur.push s) input))
  in
  let range_index =
    Test.make ~name:"range_index: 1k insert+find"
      (Staged.stage (fun () ->
           let t = Ormp_interval.Range_index.create () in
           for i = 0 to 999 do
             Ormp_interval.Range_index.insert t ~base:(i * 64) ~size:64 i
           done;
           for i = 0 to 999 do
             ignore (Ormp_interval.Range_index.find t ((i * 64) + 17))
           done))
  in
  let omc_translate =
    let omc = Ormp_core.Omc.create ~site_name:(Printf.sprintf "s%d") () in
    for i = 0 to 999 do
      Ormp_core.Omc.on_alloc omc ~time:i ~site:1 ~addr:(i * 128) ~size:64 ~type_name:None
    done;
    Test.make ~name:"omc: 1k translations"
      (Staged.stage (fun () ->
           for i = 0 to 999 do
             ignore (Ormp_core.Omc.translate omc ((i * 128) + 8))
           done))
  in
  let lmad_add name pts =
    Test.make ~name
      (Staged.stage (fun () ->
           let c = Ormp_lmad.Compressor.create ~dims:1 () in
           Array.iter (fun p -> ignore (Ormp_lmad.Compressor.add c [| p |])) pts))
  in
  let solver =
    let mk start stride count =
      Ormp_lmad.Lmad.of_levels ~start ~levels:[ { Ormp_lmad.Lmad.stride; count } ]
    in
    let store = mk [| 0; 0; 0 |] [| 1; 8; 1 |] 100000 in
    let load = mk [| 0; 4; 50 |] [| 1; 12; 1 |] 100000 in
    Test.make ~name:"solver: closed-form conflict count (100k x 100k)"
      (Staged.stage (fun () -> ignore (Ormp_lmad.Solver.count_conflicts ~store ~load)))
  in
  let profiler_event name mk_sink =
    let events =
      let r = Ormp_trace.Sink.recorder () in
      ignore
        (Ormp_vm.Runner.run
           (Ormp_workloads.Micro.linked_list ~nodes:64 ~sweeps:8 ())
           (Ormp_trace.Sink.recorder_sink r));
      Ormp_trace.Sink.events r
    in
    Test.make ~name
      (Staged.stage (fun () ->
           let sink = mk_sink () in
           Array.iter sink events))
  in
  Test.make_grouped ~name:"ormp"
    [
      seq_push "sequitur: 4k repetitive symbols" repetitive;
      seq_push "sequitur: 4k scattered symbols" scattered;
      range_index;
      omc_translate;
      lmad_add "lmad: 4k-point regular stream" (Array.init 4096 (fun i -> i * 8));
      lmad_add "lmad: 4k-point scattered stream" scattered;
      solver;
      profiler_event "whomp: probe event cost (3k-event trace)" (fun () ->
          fst (Ormp_whomp.Whomp.sink ~site_name:(Printf.sprintf "s%d") ()));
      profiler_event "leap: probe event cost (3k-event trace)" (fun () ->
          fst (Ormp_leap.Leap.sink ~site_name:(Printf.sprintf "s%d") ()));
      profiler_event "connors: probe event cost (3k-event trace)" (fun () ->
          Ormp_baselines.Connors.sink (Ormp_baselines.Connors.create ()));
      profiler_event "lossless-dep: probe event cost (3k-event trace)" (fun () ->
          Ormp_baselines.Lossless_dep.sink (Ormp_baselines.Lossless_dep.create ()));
    ]

let run_micro () =
  timed "micro" (fun () ->
      let open Bechamel in
      print_endline (Ormp_util.Ascii.section "Micro-benchmarks (Bechamel, monotonic clock)");
      let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
      let instances = Toolkit.Instance.[ monotonic_clock ] in
      let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
      let raw = Benchmark.all cfg instances (micro_tests ()) in
      let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
      let rows = ref [] in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ ns ] -> rows := (name, ns) :: !rows
          | _ -> ())
        results;
      let rows = List.sort compare !rows in
      print_endline
        (Ormp_util.Ascii.table ~header:[ "benchmark"; "time per run" ]
           ~rows:
             (List.map
                (fun (name, ns) ->
                  let pretty =
                    if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
                    else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
                    else Printf.sprintf "%.0f ns" ns
                  in
                  [ name; pretty ])
                rows)))

let () =
  let fast, enabled = parse_args () in
  let bench = not fast in
  Printf.printf "ORMP benchmark harness — %s scale\n\n%!"
    (if bench then "paper (training-input)" else "fast (test)");
  if enabled "fig5" then run_fig5 ~bench ();
  run_dependence_figs ~bench ~enabled ();
  if enabled "ablations" then run_ablations ~bench ();
  if enabled "extensions" then run_extensions ~bench ();
  if enabled "micro" then run_micro ()
