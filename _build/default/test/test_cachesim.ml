open Ormp_cachesim

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let tiny = { Cache.size_bytes = 1024; line_bytes = 64; ways = 2 }
(* 1024 / (64*2) = 8 sets *)

let test_geometry_validation () =
  let rejects c =
    try
      ignore (Cache.create c);
      false
    with Invalid_argument _ -> true
  in
  check_bool "non-pow2 line" true (rejects { Cache.size_bytes = 1024; line_bytes = 48; ways = 2 });
  check_bool "zero ways" true (rejects { Cache.size_bytes = 1024; line_bytes = 64; ways = 0 });
  check_bool "non-pow2 sets" true (rejects { Cache.size_bytes = 192; line_bytes = 64; ways = 1 });
  check_bool "presets ok" true
    (ignore (Cache.create Cache.l1d);
     ignore (Cache.create Cache.l2);
     true)

let test_cold_miss_then_hit () =
  let c = Cache.create tiny in
  check_bool "cold miss" false (Cache.access c ~addr:0x1000 ~size:8);
  check_bool "hit" true (Cache.access c ~addr:0x1000 ~size:8);
  check_bool "same line hit" true (Cache.access c ~addr:0x1038 ~size:8);
  check_bool "next line misses" false (Cache.access c ~addr:0x1040 ~size:8);
  check_int "accesses" 4 (Cache.accesses c);
  check_int "hits" 2 (Cache.hits c);
  check_int "misses" 2 (Cache.misses c)

let test_straddling_access () =
  let c = Cache.create tiny in
  (* 16 bytes starting 8 before a line boundary touch two lines *)
  check_bool "double cold miss" false (Cache.access c ~addr:(0x1040 - 8) ~size:16);
  check_bool "first line now present" true (Cache.access c ~addr:0x1000 ~size:8);
  check_bool "second line now present" true (Cache.access c ~addr:0x1040 ~size:8)

let test_associativity_and_lru () =
  let c = Cache.create tiny in
  (* Three lines mapping to the same set (stride = sets * line = 512). *)
  let a = 0x2000 and b = 0x2000 + 512 and d = 0x2000 + 1024 in
  ignore (Cache.access c ~addr:a ~size:8);
  ignore (Cache.access c ~addr:b ~size:8);
  check_bool "both ways resident" true (Cache.access c ~addr:a ~size:8);
  (* Insert a third line: evicts LRU = b. *)
  ignore (Cache.access c ~addr:d ~size:8);
  check_bool "a still resident" true (Cache.access c ~addr:a ~size:8);
  check_bool "b evicted" false (Cache.access c ~addr:b ~size:8)

let test_reset () =
  let c = Cache.create tiny in
  ignore (Cache.access c ~addr:0 ~size:8);
  Cache.reset c;
  check_int "counters cleared" 0 (Cache.accesses c);
  check_bool "contents cleared" false (Cache.access c ~addr:0 ~size:8)

let test_miss_rate () =
  let c = Cache.create tiny in
  Alcotest.(check (float 1e-9)) "idle" 0.0 (Cache.miss_rate c);
  ignore (Cache.access c ~addr:0 ~size:8);
  ignore (Cache.access c ~addr:0 ~size:8);
  Alcotest.(check (float 1e-9)) "one of two" 0.5 (Cache.miss_rate c)

let test_sink () =
  let c = Cache.create tiny in
  let s = Cache.sink c in
  s (Ormp_trace.Event.Access { instr = 0; addr = 0; size = 8; is_store = false });
  s (Ormp_trace.Event.Alloc { site = 0; addr = 0; size = 64; type_name = None });
  s (Ormp_trace.Event.Access { instr = 0; addr = 0; size = 8; is_store = true });
  check_int "only accesses counted" 2 (Cache.accesses c);
  check_int "hits" 1 (Cache.hits c)

let test_sequential_vs_scattered () =
  (* Sequential sweeps enjoy line reuse; random accesses over a large
     footprint do not. *)
  let run f =
    let c = Cache.create tiny in
    f c;
    Cache.miss_rate c
  in
  let seq =
    run (fun c ->
        for i = 0 to 4095 do
          ignore (Cache.access c ~addr:(i * 8) ~size:8)
        done)
  in
  let rng = Ormp_util.Prng.create ~seed:9 in
  let scattered =
    run (fun c ->
        for _ = 0 to 4095 do
          ignore (Cache.access c ~addr:(Ormp_util.Prng.int rng (1 lsl 20) * 8) ~size:8)
        done)
  in
  check_bool "sequential ~1/8 miss rate" true (seq < 0.2);
  check_bool "scattered ~all misses" true (scattered > 0.9)

(* Reference model: each set is a most-recently-used-first list of line
   ids; hit iff present, insert/move-to-front, truncate to associativity. *)
let reference_model cfg accesses =
  let sets = cfg.Cache.size_bytes / (cfg.Cache.line_bytes * cfg.Cache.ways) in
  let state = Array.make sets [] in
  List.map
    (fun (addr, size) ->
      let first = addr / cfg.Cache.line_bytes in
      let last = (addr + size - 1) / cfg.Cache.line_bytes in
      let hit = ref true in
      for line = first to last do
        let set = line mod sets in
        let present = List.mem line state.(set) in
        if not present then hit := false;
        let rest = List.filter (fun l -> l <> line) state.(set) in
        state.(set) <- line :: List.filteri (fun i _ -> i < cfg.Cache.ways - 1) rest
      done;
      !hit)
    accesses

let prop_matches_reference_model =
  QCheck.Test.make ~name:"set-associative LRU matches the reference model" ~count:200
    QCheck.(
      pair (int_range 1 4)
        (list_of_size Gen.(int_range 0 200) (pair (int_range 0 4096) (int_range 1 16))))
    (fun (ways_exp, raw) ->
      let cfg = { Cache.size_bytes = 1024; line_bytes = 32; ways = 1 lsl (ways_exp - 1) } in
      let accesses = List.map (fun (a, s) -> (a * 8, s)) raw in
      let c = Cache.create cfg in
      let got = List.map (fun (addr, size) -> Cache.access c ~addr ~size) accesses in
      got = reference_model cfg accesses)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "ormp_cachesim"
    [
      ( "cache",
        [
          tc "geometry validation" test_geometry_validation;
          tc "cold miss then hit" test_cold_miss_then_hit;
          tc "straddling access" test_straddling_access;
          tc "associativity and LRU" test_associativity_and_lru;
          tc "reset" test_reset;
          tc "miss rate" test_miss_rate;
          tc "sink" test_sink;
          tc "sequential vs scattered" test_sequential_vs_scattered;
          QCheck_alcotest.to_alcotest prop_matches_reference_model;
        ] );
    ]
