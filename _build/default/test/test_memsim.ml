open Ormp_memsim
open Ormp_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ok a =
  match Allocator.check_no_overlap a with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("allocator invariants: " ^ msg)

let policies = Allocator.all_policies

let each_policy f = List.iter (fun p -> f (Allocator.policy_name p) p) policies

(* ------------------------------------------------------------------ *)
(* Allocators                                                          *)
(* ------------------------------------------------------------------ *)

let test_alloc_basic () =
  each_policy (fun name p ->
      let a = Allocator.create p in
      let b1 = Allocator.alloc a 64 in
      let b2 = Allocator.alloc a 64 in
      check_bool (name ^ ": distinct blocks") true (b1 <> b2);
      check_int (name ^ ": live blocks") 2 (Allocator.live_blocks a);
      check_int (name ^ ": live bytes") 128 (Allocator.live_bytes a);
      check_int (name ^ ": total allocs") 2 (Allocator.total_allocs a);
      ok a)

let test_alloc_alignment () =
  each_policy (fun name p ->
      let a = Allocator.create ~align:16 p in
      for _ = 1 to 50 do
        let b = Allocator.alloc a 24 in
        check_int (name ^ ": aligned") 0 (b mod 16)
      done;
      ok a)

let test_size_of () =
  each_policy (fun name p ->
      let a = Allocator.create p in
      let b = Allocator.alloc a 40 in
      check_bool (name ^ ": size recorded") true (Allocator.size_of a b = Some 40);
      check_bool (name ^ ": interior not a base") true (Allocator.size_of a (b + 8) = None))

let test_free_and_errors () =
  each_policy (fun name p ->
      let a = Allocator.create p in
      let b = Allocator.alloc a 32 in
      Allocator.free a b;
      check_int (name ^ ": live after free") 0 (Allocator.live_blocks a);
      check_bool (name ^ ": double free rejected") true
        (try
           Allocator.free a b;
           false
         with Invalid_argument _ -> true);
      check_bool (name ^ ": bogus free rejected") true
        (try
           Allocator.free a 0xdead0;
           false
         with Invalid_argument _ -> true))

let test_alloc_size_validation () =
  let a = Allocator.create Allocator.Bump in
  check_bool "zero size rejected" true
    (try
       ignore (Allocator.alloc a 0);
       false
     with Invalid_argument _ -> true)

let test_first_fit_reuses_low_addresses () =
  let a = Allocator.create Allocator.First_fit in
  let b1 = Allocator.alloc a 64 in
  let _b2 = Allocator.alloc a 64 in
  Allocator.free a b1;
  let b3 = Allocator.alloc a 64 in
  check_int "hole reused" b1 b3

let test_first_fit_splits_holes () =
  let a = Allocator.create Allocator.First_fit in
  let b1 = Allocator.alloc a 128 in
  let _guard = Allocator.alloc a 16 in
  Allocator.free a b1;
  let small = Allocator.alloc a 32 in
  let rest = Allocator.alloc a 64 in
  check_int "front of hole" b1 small;
  check_bool "remainder inside old hole" true (rest > b1 && rest < b1 + 128);
  ok a

let test_first_fit_coalesces () =
  let a = Allocator.create Allocator.First_fit in
  let b1 = Allocator.alloc a 64 in
  let b2 = Allocator.alloc a 64 in
  let _guard = Allocator.alloc a 16 in
  Allocator.free a b1;
  Allocator.free a b2;
  (* Coalesced hole must fit a block bigger than either fragment. *)
  let big = Allocator.alloc a 100 in
  check_int "coalesced" b1 big;
  ok a

let test_best_fit_prefers_tight_hole () =
  let a = Allocator.create Allocator.Best_fit in
  let big = Allocator.alloc a 256 in
  let _g1 = Allocator.alloc a 16 in
  let small = Allocator.alloc a 32 in
  let _g2 = Allocator.alloc a 16 in
  Allocator.free a big;
  Allocator.free a small;
  (* A 32-byte request must take the tight 32-byte hole, not the 256. *)
  check_int "tight hole" small (Allocator.alloc a 32);
  ok a

let test_bump_never_reuses () =
  let a = Allocator.create Allocator.Bump in
  let b1 = Allocator.alloc a 64 in
  Allocator.free a b1;
  let b2 = Allocator.alloc a 64 in
  check_bool "arena does not recycle" true (b2 > b1)

let test_segregated_recycles_class () =
  let a = Allocator.create Allocator.Segregated in
  let b1 = Allocator.alloc a 48 in
  Allocator.free a b1;
  let b2 = Allocator.alloc a 50 in
  (* same 64-byte class *)
  check_int "class block recycled" b1 b2;
  ok a

let test_randomized_is_scattered () =
  let a = Allocator.create (Allocator.Randomized 3) in
  let b1 = Allocator.alloc a 64 in
  let b2 = Allocator.alloc a 64 in
  check_bool "not adjacent" true (abs (b2 - b1) > 64);
  ok a

let test_randomized_seed_determinism () =
  let run seed =
    let a = Allocator.create (Allocator.Randomized seed) in
    List.init 20 (fun _ -> Allocator.alloc a 32)
  in
  check_bool "same seed, same layout" true (run 5 = run 5);
  check_bool "different seed, different layout" true (run 5 <> run 6)

let test_out_of_memory () =
  let a = Allocator.create ~limit:256 Allocator.Bump in
  check_bool "raises Out_of_memory" true
    (try
       for _ = 1 to 100 do
         ignore (Allocator.alloc a 64)
       done;
       false
     with Out_of_memory -> true)

let prop_no_overlap_under_churn =
  QCheck.Test.make ~name:"all policies: live blocks never overlap under churn" ~count:60
    QCheck.(pair (int_range 0 4) (int_range 1 10000))
    (fun (pi, seed) ->
      let policy = List.nth policies pi in
      let a = Allocator.create policy in
      let rng = Prng.create ~seed in
      let live = ref [] in
      for _ = 1 to 300 do
        if Prng.chance rng 0.65 || !live = [] then begin
          let size = 8 * (1 + Prng.int rng 32) in
          let b = Allocator.alloc a size in
          live := b :: !live
        end
        else begin
          let i = Prng.int rng (List.length !live) in
          let b = List.nth !live i in
          Allocator.free a b;
          live := List.filteri (fun j _ -> j <> i) !live
        end
      done;
      match Allocator.check_no_overlap a with Ok () -> true | Error _ -> false)

let prop_live_bytes_accounting =
  QCheck.Test.make ~name:"live bytes tracks allocations minus frees" ~count:60
    QCheck.(pair (int_range 0 4) (small_list (int_range 1 100)))
    (fun (pi, sizes) ->
      let a = Allocator.create (List.nth policies pi) in
      let blocks = List.map (fun s -> (Allocator.alloc a s, s)) sizes in
      let total = List.fold_left ( + ) 0 sizes in
      let before = Allocator.live_bytes a = total in
      List.iter (fun (b, _) -> Allocator.free a b) blocks;
      before && Allocator.live_bytes a = 0)

(* ------------------------------------------------------------------ *)
(* Layout                                                              *)
(* ------------------------------------------------------------------ *)

let entries = [ { Layout.name = "a"; size = 10 }; { Layout.name = "b"; size = 24 } ]

let test_layout_basic () =
  let ps = Layout.assign ~base:1000 ~align:8 entries in
  let a = Layout.lookup ps "a" and b = Layout.lookup ps "b" in
  check_int "a at base" 1000 a.Layout.address;
  check_int "b aligned past a" 1016 b.Layout.address;
  check_int "segment end" (1016 + 24) (Layout.segment_end ps)

let test_layout_gap_shifts () =
  let p0 = Layout.assign ~base:1000 entries in
  let p1 = Layout.assign ~base:1000 ~gap:32 entries in
  check_bool "gap moves later objects" true
    ((Layout.lookup p1 "b").Layout.address > (Layout.lookup p0 "b").Layout.address)

let test_layout_base_shifts_everything () =
  let p0 = Layout.assign ~base:1000 entries in
  let p1 = Layout.assign ~base:2000 entries in
  List.iter2
    (fun a b -> check_int "uniform shift" 1000 (b.Layout.address - a.Layout.address))
    p0 p1

let test_layout_no_overlap () =
  let sizes = [ 3; 17; 1; 64; 9 ] in
  let es = List.mapi (fun i s -> { Layout.name = string_of_int i; size = s }) sizes in
  let ps = Layout.assign es in
  let rec pairwise = function
    | [] -> ()
    | p :: rest ->
      List.iter
        (fun q ->
          let disjoint =
            p.Layout.address + p.Layout.entry.Layout.size <= q.Layout.address
            || q.Layout.address + q.Layout.entry.Layout.size <= p.Layout.address
          in
          check_bool "placements disjoint" true disjoint)
        rest;
      pairwise rest
  in
  pairwise ps

let test_layout_lookup_missing () =
  check_bool "raises Not_found" true
    (try
       ignore (Layout.lookup (Layout.assign entries) "zzz");
       false
     with Not_found -> true)

let test_layout_validation () =
  check_bool "bad size rejected" true
    (try
       ignore (Layout.assign [ { Layout.name = "x"; size = 0 } ]);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let test_pool_basic () =
  let heap = Allocator.create Allocator.First_fit in
  let p = Pool.create heap ~size:256 in
  let x = Pool.alloc p 24 in
  let y = Pool.alloc p 24 in
  check_int "first at base" (Pool.base p) x;
  check_int "second is 8-aligned after first" (Pool.base p + 24) y;
  check_bool "pieces inside pool" true (y + 24 <= Pool.base p + Pool.size p);
  check_int "used" 48 (Pool.used p)

let test_pool_reset () =
  let heap = Allocator.create Allocator.First_fit in
  let p = Pool.create heap ~size:128 in
  let x = Pool.alloc p 64 in
  Pool.reset p;
  check_int "reuses from base" x (Pool.alloc p 64);
  check_int "used after reset+alloc" 64 (Pool.used p)

let test_pool_exhaustion () =
  let heap = Allocator.create Allocator.First_fit in
  let p = Pool.create heap ~size:64 in
  ignore (Pool.alloc p 60);
  check_bool "overflow raises" true
    (try
       ignore (Pool.alloc p 8);
       false
     with Out_of_memory -> true)

let test_pool_destroy_returns_block () =
  let heap = Allocator.create Allocator.First_fit in
  let p = Pool.create heap ~size:128 in
  check_int "one live block" 1 (Allocator.live_blocks heap);
  Pool.destroy p;
  check_int "returned" 0 (Allocator.live_blocks heap)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "ormp_memsim"
    [
      ( "allocator",
        [
          tc "basic alloc" test_alloc_basic;
          tc "alignment" test_alloc_alignment;
          tc "size_of" test_size_of;
          tc "free and errors" test_free_and_errors;
          tc "size validation" test_alloc_size_validation;
          tc "first-fit reuse" test_first_fit_reuses_low_addresses;
          tc "first-fit splits holes" test_first_fit_splits_holes;
          tc "first-fit coalesces" test_first_fit_coalesces;
          tc "best-fit tight hole" test_best_fit_prefers_tight_hole;
          tc "bump never reuses" test_bump_never_reuses;
          tc "segregated recycles class" test_segregated_recycles_class;
          tc "randomized scatters" test_randomized_is_scattered;
          tc "randomized seeded" test_randomized_seed_determinism;
          tc "out of memory" test_out_of_memory;
          QCheck_alcotest.to_alcotest prop_no_overlap_under_churn;
          QCheck_alcotest.to_alcotest prop_live_bytes_accounting;
        ] );
      ( "layout",
        [
          tc "basic" test_layout_basic;
          tc "gap shifts" test_layout_gap_shifts;
          tc "base shifts everything" test_layout_base_shifts_everything;
          tc "no overlap" test_layout_no_overlap;
          tc "lookup missing" test_layout_lookup_missing;
          tc "validation" test_layout_validation;
        ] );
      ( "pool",
        [
          tc "basic" test_pool_basic;
          tc "reset" test_pool_reset;
          tc "exhaustion" test_pool_exhaustion;
          tc "destroy" test_pool_destroy_returns_block;
        ] );
    ]
