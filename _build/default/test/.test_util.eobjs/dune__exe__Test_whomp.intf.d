test/test_whomp.mli:
