test/test_workloads.ml: Alcotest Array Config Event Hashtbl List Micro Ormp_core Ormp_leap Ormp_lmad Ormp_memsim Ormp_trace Ormp_vm Ormp_workloads Printf Registry Runner Sink
