test/test_interval.ml: Alcotest Hashtbl List Option Ormp_interval Ormp_util Printf Prng QCheck QCheck_alcotest Range_index
