test/test_report.ml: Alcotest Error_dist Experiments Lazy List Ormp_baselines Ormp_leap Ormp_report Ormp_util Ormp_workloads String
