test/test_sequitur.ml: Alcotest Array Char Format Gen List Ormp_sequitur QCheck QCheck_alcotest Sequitur String
