test/test_memsim.ml: Alcotest Allocator Layout List Ormp_memsim Ormp_util Pool Prng QCheck QCheck_alcotest
