test/test_util.ml: Alcotest Array Ascii Bytesize Fun Histogram List Ormp_util Printf Prng QCheck QCheck_alcotest Stats String
