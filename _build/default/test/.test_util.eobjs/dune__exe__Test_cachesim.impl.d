test/test_cachesim.ml: Alcotest Array Cache Gen List Ormp_cachesim Ormp_trace Ormp_util QCheck QCheck_alcotest
