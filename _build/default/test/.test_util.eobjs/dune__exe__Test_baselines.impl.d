test/test_baselines.ml: Alcotest Connors Dep_types Event Format List Lossless_dep Lossless_stride Ormp_baselines Ormp_trace QCheck QCheck_alcotest
