test/test_trace.ml: Alcotest Array Event Filename Format Instr List Ormp_trace Ormp_util Ormp_vm Ormp_whomp Ormp_workloads Printf Result Sink String Sys Trace_file
