test/test_persist.ml: Alcotest Filename List Ormp_leap Ormp_persist Ormp_sequitur Ormp_util Ormp_whomp Ormp_workloads QCheck QCheck_alcotest Result Sexp Sys
