test/test_core.ml: Alcotest Array Cdc Decompose Format List Omc Ormp_core Ormp_trace Printf QCheck QCheck_alcotest Tuple
