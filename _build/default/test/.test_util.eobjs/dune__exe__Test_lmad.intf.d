test/test_lmad.mli:
