test/test_leap.mli:
