test/test_whomp.ml: Alcotest Array Config Engine List Ormp_core Ormp_memsim Ormp_sequitur Ormp_trace Ormp_vm Ormp_whomp Ormp_workloads Printf Program Rasg Runner Whomp
