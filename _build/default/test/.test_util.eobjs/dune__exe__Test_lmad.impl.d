test/test_lmad.ml: Alcotest Array Compressor Format Gen List Lmad Ormp_lmad QCheck QCheck_alcotest Solver
