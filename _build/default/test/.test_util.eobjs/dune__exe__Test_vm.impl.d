test/test_vm.ml: Alcotest Array Config Engine Event Instr List Ormp_core Ormp_memsim Ormp_trace Ormp_vm Ormp_workloads Printf Program Runner Sink
