test/test_leap.ml: Alcotest Alias Array Config Engine Format Instr Leap List Mdf Ormp_baselines Ormp_leap Ormp_lmad Ormp_trace Ormp_util Ormp_vm Ormp_workloads Printf Program Runner Strides
