open Ormp_report
module Dt = Ormp_baselines.Dep_types

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let dep s l f = { Dt.store = s; load = l; freq = f }

(* ------------------------------------------------------------------ *)
(* Error_dist                                                          *)
(* ------------------------------------------------------------------ *)

let test_exact_match_is_center () =
  let h = Error_dist.of_deps ~truth:[ dep 1 2 0.5 ] ~estimate:[ dep 1 2 0.5 ] in
  check_int "one pair" 1 (Ormp_util.Histogram.total h);
  check_float "good" 1.0 (Error_dist.good_fraction h);
  check_float "no over" 0.0 (Error_dist.overestimates h);
  check_float "no under" 0.0 (Error_dist.underestimates h)

let test_missing_pair_counts_as_zero () =
  let h = Error_dist.of_deps ~truth:[ dep 1 2 0.8 ] ~estimate:[] in
  check_int "pair still counted" 1 (Ormp_util.Histogram.total h);
  check_float "fully underestimated" 1.0 (Error_dist.underestimates h);
  check_float "not good" 0.0 (Error_dist.good_fraction h)

let test_spurious_pair_is_overestimate () =
  let h = Error_dist.of_deps ~truth:[] ~estimate:[ dep 1 2 0.8 ] in
  check_float "overestimate" 1.0 (Error_dist.overestimates h)

let test_within_ten_points_is_good () =
  let h = Error_dist.of_deps ~truth:[ dep 1 2 0.50; dep 3 4 0.50 ]
      ~estimate:[ dep 1 2 0.59; dep 3 4 0.62 ] in
  check_float "one of two good" 0.5 (Error_dist.good_fraction h)

let test_union_of_pairs () =
  let h =
    Error_dist.of_deps ~truth:[ dep 1 2 0.5 ] ~estimate:[ dep 3 4 0.5 ]
  in
  check_int "two pairs in universe" 2 (Ormp_util.Histogram.total h)

(* ------------------------------------------------------------------ *)
(* Experiments (smallest real end-to-end runs)                         *)
(* ------------------------------------------------------------------ *)

let suite = lazy (Experiments.run_suite (Ormp_workloads.Registry.find "300.twolf-like"))

let test_suite_components_share_run () =
  let s = Lazy.force suite in
  (* The same trace feeds all profilers: load exec counts must agree. *)
  List.iter
    (fun ld ->
      let leap_total = Ormp_leap.Leap.instr_total s.Experiments.leap ld in
      let truth_total = Ormp_baselines.Lossless_dep.load_execs s.Experiments.truth ld in
      check_int "exec counts agree" truth_total leap_total)
    (Ormp_leap.Leap.loads s.Experiments.leap)

let test_fig6_7_shapes () =
  let s = Lazy.force suite in
  let f6 = Experiments.fig6 [ s ] and f7 = Experiments.fig7 [ s ] in
  check_int "one row each" 1 (List.length f6);
  let h7 = (List.hd f7).Experiments.hist in
  check_float "Connors never overestimates" 0.0 (Error_dist.overestimates h7);
  check_bool "histograms non-empty" true (Ormp_util.Histogram.total h7 > 0);
  check_bool "leap histogram non-empty" true
    (Ormp_util.Histogram.total (List.hd f6).Experiments.hist > 0)

let test_fig8_consistency () =
  let s = Lazy.force suite in
  let d = Experiments.fig8 [ s ] in
  check_bool "good fractions in range" true
    (d.Experiments.leap_good >= 0.0 && d.Experiments.leap_good <= 1.0
    && d.Experiments.connors_good >= 0.0 && d.Experiments.connors_good <= 1.0)

let test_fig9_score_range () =
  let s = Lazy.force suite in
  match Experiments.fig9 [ s ] with
  | [ r ] ->
    check_bool "identified <= real" true (r.Experiments.identified <= r.Experiments.real);
    check_bool "score in range" true (r.Experiments.score >= 0.0 && r.Experiments.score <= 1.0)
  | _ -> Alcotest.fail "expected one row"

let test_table1_fields () =
  let s = Lazy.force suite in
  match Experiments.table1 ~repeats:1 [ s ] with
  | [ r ] ->
    check_bool "compression > 1" true (r.Experiments.compression_ratio > 1.0);
    check_bool "captured fractions in range" true
      (r.Experiments.accesses_captured >= 0.0 && r.Experiments.accesses_captured <= 1.0
      && r.Experiments.instructions_captured >= 0.0
      && r.Experiments.instructions_captured <= 1.0)
  | _ -> Alcotest.fail "expected one row"

let test_fig5_row () =
  let row = List.hd (Experiments.fig5 ()) in
  check_bool "byte sizes positive" true (row.Experiments.rasg_bytes > 0 && row.Experiments.omsg_bytes > 0);
  check_float "compression consistent"
    (float_of_int (row.Experiments.rasg_bytes - row.Experiments.omsg_bytes)
    /. float_of_int row.Experiments.rasg_bytes)
    row.Experiments.compression_pct

let test_budget_ablation_monotone () =
  let rows =
    Experiments.ablation_lmad_budget ~budgets:[ 2; 30 ]
      (Ormp_workloads.Registry.find "300.twolf-like")
  in
  match rows with
  | [ small; big ] ->
    check_bool "capture grows with budget" true
      (big.Experiments.accesses_captured_b >= small.Experiments.accesses_captured_b)
  | _ -> Alcotest.fail "expected two rows"

let test_window_ablation_monotone () =
  let rows =
    Experiments.ablation_connors_window ~windows:[ 8; 100000 ]
      (Ormp_workloads.Registry.find "300.twolf-like")
  in
  match rows with
  | [ small; huge ] ->
    check_bool "bigger window finds at least as many pairs" true
      (huge.Experiments.pairs_found >= small.Experiments.pairs_found);
    check_bool "huge window is essentially lossless" true (huge.Experiments.connors_good > 0.99)
  | _ -> Alcotest.fail "expected two rows"

let test_grouping_ablation () =
  let rows = Experiments.ablation_grouping () in
  check_int "three workloads" 3 (List.length rows);
  let two_site = List.find (fun r -> r.Experiments.workload_g = "micro.two_site_list") rows in
  check_int "site grouping splits the list" 2 two_site.Experiments.site_groups;
  check_int "type grouping merges it" 1 two_site.Experiments.type_groups;
  List.iter
    (fun r ->
      check_bool "captures in range" true
        (r.Experiments.site_capture >= 0.0 && r.Experiments.site_capture <= 1.0
        && r.Experiments.type_capture >= 0.0 && r.Experiments.type_capture <= 1.0))
    rows

let test_phase_extension () =
  let rows = Experiments.extension_phases () in
  check_int "all workloads" 7 (List.length rows);
  List.iter
    (fun r ->
      check_bool "at least one phase" true (r.Experiments.n_phases >= 1);
      check_bool "phase-cognizant never worse" true
        (r.Experiments.phased_capture >= r.Experiments.mono_capture -. 1e-9))
    rows;
  check_bool "some workload is multi-phase" true
    (List.exists (fun r -> r.Experiments.n_phases > 1) rows)

let test_pool_ablation () =
  match Experiments.ablation_pool_handling () with
  | [ single; exposed ] ->
    check_bool "exposed mode sees many more objects" true
      (exposed.Experiments.pool_objects > 10 * single.Experiments.pool_objects);
    check_bool "captures in range" true
      (single.Experiments.pool_capture >= 0.0 && exposed.Experiments.pool_capture <= 1.0)
  | _ -> Alcotest.fail "expected two rows"

let test_renderers_do_not_fail () =
  let s = Lazy.force suite in
  let nonempty str = check_bool "renders" true (String.length str > 0) in
  nonempty (Experiments.render_dist ~title:"t" (Experiments.fig6 [ s ]));
  nonempty (Experiments.render_fig8 (Experiments.fig8 [ s ]));
  nonempty (Experiments.render_fig9 (Experiments.fig9 [ s ]));
  nonempty (Experiments.render_table1 (Experiments.table1 ~repeats:1 [ s ]))

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "ormp_report"
    [
      ( "error_dist",
        [
          tc "exact match" test_exact_match_is_center;
          tc "missing pair" test_missing_pair_counts_as_zero;
          tc "spurious pair" test_spurious_pair_is_overestimate;
          tc "within ten points" test_within_ten_points_is_good;
          tc "union of pairs" test_union_of_pairs;
        ] );
      ( "experiments",
        [
          tc "suite shares one run" test_suite_components_share_run;
          tc "fig6/7 shapes" test_fig6_7_shapes;
          tc "fig8 consistency" test_fig8_consistency;
          tc "fig9 score range" test_fig9_score_range;
          tc "table1 fields" test_table1_fields;
          tc "fig5 row" test_fig5_row;
          tc "budget ablation monotone" test_budget_ablation_monotone;
          tc "window ablation monotone" test_window_ablation_monotone;
          tc "grouping ablation" test_grouping_ablation;
          tc "pool ablation" test_pool_ablation;
          tc "phase extension" test_phase_extension;
          tc "renderers" test_renderers_do_not_fail;
        ] );
    ]
