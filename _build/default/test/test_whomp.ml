open Ormp_whomp
open Ormp_vm

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let list_prog = Ormp_workloads.Micro.linked_list ~nodes:16 ~sweeps:4 ()

(* ------------------------------------------------------------------ *)
(* Losslessness                                                        *)
(* ------------------------------------------------------------------ *)

let collect_tuples ?config program =
  (* Reference object-relative stream via a bare CDC. *)
  let tuples = ref [] in
  let cdc =
    Ormp_core.Cdc.create
      ~site_name:(Printf.sprintf "site%d")
      ~on_tuple:(fun tu -> tuples := tu :: !tuples)
      ()
  in
  ignore (Runner.run ?config program (Ormp_core.Cdc.sink cdc));
  List.rev !tuples

let test_whomp_lossless () =
  let p = Whomp.profile list_prog in
  let expanded = Whomp.expand p in
  let reference = collect_tuples list_prog in
  check_int "same length" (List.length reference) (List.length expanded);
  List.iter2
    (fun (a : Ormp_core.Tuple.t) (b : Ormp_core.Tuple.t) ->
      check_int "instr" a.instr b.instr;
      check_int "group" a.group b.group;
      check_int "object" a.obj b.obj;
      check_int "offset" a.offset b.offset;
      check_int "time" a.time b.time)
    reference expanded

let test_whomp_dimensions () =
  let p = Whomp.profile list_prog in
  Alcotest.(check (list string))
    "paper dimension order"
    [ "instr"; "group"; "object"; "offset" ]
    (List.map fst p.Whomp.dims);
  List.iter
    (fun (_, g) ->
      check_int "every dimension stream has all accesses" p.Whomp.collected
        (Ormp_sequitur.Sequitur.input_length g))
    p.Whomp.dims

let test_whomp_auxiliary_output () =
  let p = Whomp.profile list_prog in
  check_bool "groups recorded" true (List.length p.Whomp.groups >= 2);
  check_bool "lifetimes recorded" true (List.length p.Whomp.lifetimes >= 16);
  check_int "no wild accesses in this workload" 0 p.Whomp.wild

(* ------------------------------------------------------------------ *)
(* The headline property: object-relative profiles are invariant to    *)
(* allocator and layout artifacts, raw-address profiles are not.       *)
(* ------------------------------------------------------------------ *)

let test_object_relative_invariance () =
  let configs = Config.variants Config.default in
  let profiles = List.map (fun c -> Whomp.profile ~config:c list_prog) configs in
  let streams =
    List.map
      (fun p ->
        List.map (fun (_, g) -> Ormp_sequitur.Sequitur.expand g) p.Whomp.dims)
      profiles
  in
  match streams with
  | first :: rest ->
    List.iteri
      (fun i s ->
        check_bool
          (Printf.sprintf "object-relative stream identical under config %d" (i + 1))
          true (s = first))
      rest
  | [] -> Alcotest.fail "no configs"

let test_raw_streams_differ_across_allocators () =
  let config2 =
    { Config.default with Config.policy = Ormp_memsim.Allocator.Bump; heap_base = 0x2000_0000 }
  in
  let r0 = Rasg.profile list_prog in
  let r1 = Rasg.profile ~config:config2 list_prog in
  check_int "same access count" r0.Rasg.accesses r1.Rasg.accesses;
  check_bool "raw address streams differ" true
    (Ormp_sequitur.Sequitur.expand r0.Rasg.grammar
    <> Ormp_sequitur.Sequitur.expand r1.Rasg.grammar)

(* ------------------------------------------------------------------ *)
(* Compression comparison (Figure 5 mechanics)                         *)
(* ------------------------------------------------------------------ *)

let test_omsg_beats_rasg_on_lists () =
  (* The linked list with decoy allocations is the paper's motivating
     example: object-relative dimensions are near-constant streams while
     raw addresses are scattered. *)
  let p = Whomp.profile list_prog in
  let r = Rasg.profile list_prog in
  check_bool "OMSG bytes < RASG bytes" true (Whomp.omsg_bytes p < Rasg.bytes r);
  check_bool "sizes positive" true (Whomp.omsg_size p > 0 && Rasg.size r > 0)

let test_rasg_lossless () =
  let r = Rasg.profile list_prog in
  check_int "records every access" r.Rasg.accesses
    (Array.length (Ormp_sequitur.Sequitur.expand r.Rasg.grammar))

let test_streaming_sink_equals_profile () =
  let s, fin = Rasg.sink () in
  let result = Runner.run list_prog s in
  let via_sink = fin ~elapsed:result.Runner.elapsed in
  let direct = Rasg.profile list_prog in
  check_int "same accesses" direct.Rasg.accesses via_sink.Rasg.accesses;
  check_int "same grammar size" (Rasg.size direct) (Rasg.size via_sink)

let test_whomp_wild_accesses_not_collected () =
  let prog =
    Program.make ~name:"wild" ~description:"raw accesses outside objects" (fun e ->
        let ld = Engine.instr e ~name:"w.ld" Ormp_trace.Instr.Load in
        Engine.load_raw e ~instr:ld 0x9999;
        Engine.load_raw e ~instr:ld 0x9999)
  in
  let p = Whomp.profile prog in
  check_int "nothing collected" 0 p.Whomp.collected;
  check_int "wild counted" 2 p.Whomp.wild

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "ormp_whomp"
    [
      ( "whomp",
        [
          tc "lossless" test_whomp_lossless;
          tc "dimension streams" test_whomp_dimensions;
          tc "auxiliary output" test_whomp_auxiliary_output;
          tc "wild accesses" test_whomp_wild_accesses_not_collected;
        ] );
      ( "invariance",
        [
          tc "object-relative invariance across configs" test_object_relative_invariance;
          tc "raw streams differ across allocators" test_raw_streams_differ_across_allocators;
        ] );
      ( "compression",
        [
          tc "OMSG beats RASG on linked lists" test_omsg_beats_rasg_on_lists;
          tc "RASG lossless" test_rasg_lossless;
          tc "streaming sink" test_streaming_sink_equals_profile;
        ] );
    ]
