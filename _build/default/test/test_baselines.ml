open Ormp_baselines
open Ormp_trace

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let ld ~instr ~addr = Event.Access { instr; addr; size = 8; is_store = false }
let st ~instr ~addr = Event.Access { instr; addr; size = 8; is_store = true }

let feed sink evs = List.iter sink evs

(* ------------------------------------------------------------------ *)
(* Dep_types                                                           *)
(* ------------------------------------------------------------------ *)

let test_dep_find () =
  let deps = [ { Dep_types.store = 1; load = 2; freq = 0.5 } ] in
  check_float "present" 0.5 (Dep_types.find deps ~store:1 ~load:2);
  check_float "absent" 0.0 (Dep_types.find deps ~store:9 ~load:2)

let test_dep_pairs_union () =
  let a = [ { Dep_types.store = 1; load = 2; freq = 0.5 } ] in
  let b =
    [ { Dep_types.store = 1; load = 2; freq = 0.9 }; { Dep_types.store = 3; load = 4; freq = 0.1 } ]
  in
  Alcotest.(check (list (pair int int))) "deduplicated union" [ (1, 2); (3, 4) ]
    (Dep_types.pairs [ a; b ])

let test_dep_pp () =
  Alcotest.(check string) "render" "(st1, ld2, 50.0%)"
    (Format.asprintf "%a" Dep_types.pp { Dep_types.store = 1; load = 2; freq = 0.5 })

(* ------------------------------------------------------------------ *)
(* Lossless_dep                                                        *)
(* ------------------------------------------------------------------ *)

let test_lossless_raw () =
  let t = Lossless_dep.create () in
  feed (Lossless_dep.sink t)
    [ st ~instr:1 ~addr:100; ld ~instr:2 ~addr:100; ld ~instr:2 ~addr:200 ];
  (match Lossless_dep.deps t with
  | [ d ] ->
    check_int "store" 1 d.Dep_types.store;
    check_int "load" 2 d.Dep_types.load;
    check_float "freq = 1 conflict / 2 execs" 0.5 d.Dep_types.freq
  | l -> Alcotest.failf "expected 1 dep, got %d" (List.length l));
  check_int "load execs" 2 (Lossless_dep.load_execs t 2);
  check_int "locations" 1 (Lossless_dep.locations t)

let test_lossless_last_writer_semantics () =
  (* The paper's example: ld1 depends on st2 for 10%, st3 for 90% — each
     load execution is charged to the LAST writer only. *)
  let t = Lossless_dep.create () in
  let sink = Lossless_dep.sink t in
  for i = 1 to 10 do
    if i = 1 then sink (st ~instr:2 ~addr:100) else sink (st ~instr:3 ~addr:100);
    sink (ld ~instr:1 ~addr:100)
  done;
  let deps = Lossless_dep.deps t in
  check_float "st2 10%" 0.1 (Dep_types.find deps ~store:2 ~load:1);
  check_float "st3 90%" 0.9 (Dep_types.find deps ~store:3 ~load:1)

let test_lossless_no_dep_without_store () =
  let t = Lossless_dep.create () in
  feed (Lossless_dep.sink t) [ ld ~instr:2 ~addr:100 ];
  check_int "no deps" 0 (List.length (Lossless_dep.deps t))

let test_lossless_load_before_store () =
  let t = Lossless_dep.create () in
  feed (Lossless_dep.sink t) [ ld ~instr:2 ~addr:100; st ~instr:1 ~addr:100 ];
  check_int "no RAW backwards" 0 (List.length (Lossless_dep.deps t))

(* ------------------------------------------------------------------ *)
(* Connors                                                             *)
(* ------------------------------------------------------------------ *)

let test_connors_hit_within_window () =
  let t = Connors.create ~window:4 () in
  feed (Connors.sink t) [ st ~instr:1 ~addr:100; ld ~instr:2 ~addr:100 ];
  check_float "found" 1.0 (Dep_types.find (Connors.deps t) ~store:1 ~load:2)

let test_connors_miss_outside_window () =
  let t = Connors.create ~window:4 () in
  let sink = Connors.sink t in
  sink (st ~instr:1 ~addr:100);
  (* four unrelated stores push the interesting one out of the window *)
  for i = 1 to 4 do
    sink (st ~instr:9 ~addr:(1000 + (8 * i)))
  done;
  sink (ld ~instr:2 ~addr:100);
  check_float "missed" 0.0 (Dep_types.find (Connors.deps t) ~store:1 ~load:2)

let test_connors_most_recent_store_wins () =
  let t = Connors.create ~window:16 () in
  feed (Connors.sink t)
    [ st ~instr:1 ~addr:100; st ~instr:3 ~addr:100; ld ~instr:2 ~addr:100 ];
  let deps = Connors.deps t in
  check_float "recent writer charged" 1.0 (Dep_types.find deps ~store:3 ~load:2);
  check_float "shadowed writer not charged" 0.0 (Dep_types.find deps ~store:1 ~load:2)

let test_connors_window_validation () =
  check_bool "rejects zero" true
    (try
       ignore (Connors.create ~window:0 ());
       false
     with Invalid_argument _ -> true)

(* The paper's Figure 7 property: Connors never overestimates any pair. *)
let prop_connors_never_overestimates =
  QCheck.Test.make ~name:"Connors frequency <= lossless frequency per pair" ~count:150
    QCheck.(
      pair (int_range 1 32)
        (small_list (triple bool (int_range 0 3) (int_range 0 7))))
    (fun (window, ops) ->
      let truth = Lossless_dep.create () in
      let connors = Connors.create ~window () in
      let sink = Ormp_trace.Sink.fanout [ Lossless_dep.sink truth; Connors.sink connors ] in
      List.iter
        (fun (is_store, instr, slot) ->
          let instr = if is_store then instr else instr + 10 in
          sink (Event.Access { instr; addr = 64 + (8 * slot); size = 8; is_store }))
        ops;
      let td = Lossless_dep.deps truth in
      let cd = Connors.deps connors in
      List.for_all
        (fun (s, l) ->
          Dep_types.find cd ~store:s ~load:l <= Dep_types.find td ~store:s ~load:l +. 1e-9)
        (Dep_types.pairs [ td; cd ]))

(* With an unbounded window Connors IS the lossless profiler. *)
let prop_connors_unbounded_equals_lossless =
  QCheck.Test.make ~name:"Connors with huge window = lossless" ~count:150
    QCheck.(small_list (triple bool (int_range 0 3) (int_range 0 7)))
    (fun ops ->
      let truth = Lossless_dep.create () in
      let connors = Connors.create ~window:max_int ()
      in
      let sink = Ormp_trace.Sink.fanout [ Lossless_dep.sink truth; Connors.sink connors ] in
      List.iter
        (fun (is_store, instr, slot) ->
          let instr = if is_store then instr else instr + 10 in
          sink (Event.Access { instr; addr = 64 + (8 * slot); size = 8; is_store }))
        ops;
      Lossless_dep.deps truth = Connors.deps connors)

(* ------------------------------------------------------------------ *)
(* Lossless_stride                                                     *)
(* ------------------------------------------------------------------ *)

let test_stride_pure () =
  let t = Lossless_stride.create () in
  let sink = Lossless_stride.sink t in
  for i = 0 to 9 do
    sink (ld ~instr:1 ~addr:(1000 + (8 * i)))
  done;
  check_int "execs" 10 (Lossless_stride.execs t 1);
  (match Lossless_stride.strides t 1 with
  | [ (8, 9) ] -> ()
  | l -> Alcotest.failf "unexpected strides (%d entries)" (List.length l));
  (match Lossless_stride.strongly_strided t with
  | [ (1, 8) ] -> ()
  | l -> Alcotest.failf "expected [(1,8)], got %d entries" (List.length l))

let test_stride_threshold () =
  let t = Lossless_stride.create () in
  let sink = Lossless_stride.sink t in
  (* 6 strides of 8, 4 strides of 24: dominant covers 60% < 70%. *)
  let addr = ref 0 in
  sink (ld ~instr:1 ~addr:!addr);
  for i = 1 to 10 do
    addr := !addr + (if i <= 6 then 8 else 24);
    sink (ld ~instr:1 ~addr:!addr)
  done;
  check_int "not strongly strided at 0.7" 0 (List.length (Lossless_stride.strongly_strided t));
  check_int "strongly strided at 0.5" 1
    (List.length (Lossless_stride.strongly_strided ~threshold:0.5 t))

let test_stride_single_exec_excluded () =
  let t = Lossless_stride.create () in
  (Lossless_stride.sink t) (ld ~instr:1 ~addr:0);
  check_int "too few execs" 0 (List.length (Lossless_stride.strongly_strided t))

let test_stride_multiple_instrs () =
  let t = Lossless_stride.create () in
  let sink = Lossless_stride.sink t in
  for i = 0 to 9 do
    sink (ld ~instr:1 ~addr:(8 * i));
    sink (st ~instr:2 ~addr:(4096 + (16 * i)))
  done;
  (match Lossless_stride.strongly_strided t with
  | [ (1, 8); (2, 16) ] -> ()
  | l -> Alcotest.failf "expected both instructions, got %d" (List.length l))

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "ormp_baselines"
    [
      ( "dep_types",
        [ tc "find" test_dep_find; tc "pairs union" test_dep_pairs_union; tc "pp" test_dep_pp ] );
      ( "lossless_dep",
        [
          tc "raw dependence" test_lossless_raw;
          tc "last-writer semantics (paper example)" test_lossless_last_writer_semantics;
          tc "no store, no dep" test_lossless_no_dep_without_store;
          tc "load before store" test_lossless_load_before_store;
        ] );
      ( "connors",
        [
          tc "hit within window" test_connors_hit_within_window;
          tc "miss outside window" test_connors_miss_outside_window;
          tc "most recent store wins" test_connors_most_recent_store_wins;
          tc "window validation" test_connors_window_validation;
          QCheck_alcotest.to_alcotest prop_connors_never_overestimates;
          QCheck_alcotest.to_alcotest prop_connors_unbounded_equals_lossless;
        ] );
      ( "lossless_stride",
        [
          tc "pure stride" test_stride_pure;
          tc "threshold" test_stride_threshold;
          tc "single exec excluded" test_stride_single_exec_excluded;
          tc "multiple instrs" test_stride_multiple_instrs;
        ] );
    ]
