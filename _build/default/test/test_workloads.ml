open Ormp_workloads
open Ormp_vm
open Ormp_trace

let check_bool = Alcotest.(check bool)

let run_events ?(config = Config.default) program =
  let r = Sink.recorder () in
  ignore (Runner.run ~config program (Sink.recorder_sink r));
  r

let all_programs =
  List.map (fun e -> (e.Registry.name, Registry.program e)) Registry.spec
  @ List.map (fun (n, p) -> ("micro." ^ n, p)) Micro.all

(* ------------------------------------------------------------------ *)
(* Generic properties over every workload                              *)
(* ------------------------------------------------------------------ *)

let test_all_produce_accesses () =
  List.iter
    (fun (name, p) ->
      let r = run_events p in
      check_bool (name ^ ": has accesses") true (Sink.access_count r > 1000))
    all_programs

let test_all_deterministic () =
  List.iter
    (fun (name, p) ->
      let a = Sink.events (run_events p) in
      let b = Sink.events (run_events p) in
      check_bool (name ^ ": reproducible") true (a = b))
    all_programs

let test_all_have_loads_and_stores () =
  List.iter
    (fun (name, p) ->
      let c = Sink.counter () in
      ignore (Runner.run p (Sink.counter_sink c));
      check_bool (name ^ ": loads") true (c.Sink.loads > 0);
      check_bool (name ^ ": stores") true (c.Sink.stores > 0);
      check_bool (name ^ ": allocs") true (c.Sink.allocs > 0))
    all_programs

(* The paper's core premise, checked end-to-end for every workload: the
   object-relative stream is identical under every allocator/layout
   variant while raw addresses change. *)
let or_stream config p =
  let tuples = ref [] in
  let cdc =
    Ormp_core.Cdc.create
      ~site_name:(Printf.sprintf "s%d")
      ~on_tuple:(fun (tu : Ormp_core.Tuple.t) ->
        tuples := (tu.instr, tu.group, tu.obj, tu.offset) :: !tuples)
      ()
  in
  ignore (Runner.run ~config p (Ormp_core.Cdc.sink cdc));
  !tuples

let raw_stream config p =
  let addrs = ref [] in
  let sink = function
    | Event.Access { addr; _ } -> addrs := addr :: !addrs
    | _ -> ()
  in
  ignore (Runner.run ~config p sink);
  !addrs

let test_object_relative_invariance_all () =
  List.iter
    (fun (name, p) ->
      let base = or_stream Config.default p in
      List.iter
        (fun c ->
          check_bool
            (name ^ ": object-relative invariant under " ^ Config.name c)
            true
            (or_stream c p = base))
        (List.tl (Config.variants Config.default)))
    all_programs

let test_raw_streams_vary () =
  List.iter
    (fun (name, p) ->
      let base = raw_stream Config.default p in
      let bump =
        raw_stream
          { Config.default with
            Config.policy = Ormp_memsim.Allocator.Bump;
            heap_base = 0x3000_0000
          }
          p
      in
      check_bool (name ^ ": raw streams differ across allocators") true (base <> bump))
    all_programs

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let test_registry_spec_order () =
  Alcotest.(check (list string))
    "Table 1 order"
    [
      "164.gzip-like";
      "175.vpr-like";
      "181.mcf-like";
      "186.crafty-like";
      "197.parser-like";
      "256.bzip2-like";
      "300.twolf-like";
    ]
    (List.map (fun e -> e.Registry.name) Registry.spec)

let test_registry_find () =
  check_bool "by name" true ((Registry.find "181.mcf-like").Registry.spec_ref = "181.mcf");
  check_bool "by spec ref" true ((Registry.find "181.mcf").Registry.name = "181.mcf-like");
  check_bool "missing raises" true
    (try
       ignore (Registry.find "999.nope");
       false
     with Not_found -> true)

let test_registry_bench_scale_is_bigger () =
  List.iter
    (fun e ->
      check_bool
        (e.Registry.name ^ ": bench > default")
        true
        (e.Registry.bench_scale > e.Registry.default_scale))
    Registry.spec

(* ------------------------------------------------------------------ *)
(* Per-workload character checks (what drives the paper's tables)      *)
(* ------------------------------------------------------------------ *)

let capture name = Ormp_leap.Leap.accesses_captured (Ormp_leap.Leap.profile
  (Registry.program (Registry.find name)))

let test_mcf_is_irregular () =
  check_bool "mcf capture low (pointer chasing)" true (capture "181.mcf" < 0.25)

let test_twolf_is_regular_within_objects () =
  check_bool "twolf capture high (fixed field offsets)" true (capture "300.twolf" > 0.5)

let test_parser_uses_custom_pool () =
  (* The pool appears as a single object (§3.1 footnote): all pieces of all
     sentences translate into one (group, object). *)
  let p = Ormp_leap.Leap.profile (Registry.program (Registry.find "197.parser")) in
  let pool_groups =
    List.filter
      (fun (k, (s : Ormp_leap.Leap.stream)) ->
        ignore k;
        (* streams whose object dimension never moves: single object *)
        List.for_all
          (fun (d : Ormp_lmad.Lmad.t) ->
            List.for_all (fun (l : Ormp_lmad.Lmad.level) -> l.Ormp_lmad.Lmad.stride.(0) = 0)
              d.Ormp_lmad.Lmad.levels)
          (Ormp_lmad.Compressor.lmads s.Ormp_leap.Leap.comp))
      p.Ormp_leap.Leap.streams
  in
  check_bool "most streams stay within one object" true
    (List.length pool_groups > List.length p.Ormp_leap.Leap.streams / 2)

let test_linked_list_fields () =
  (* Figure 3: both load instructions hit fixed offsets (0 and 8) within
     group-0 objects. *)
  let r = run_events (Micro.linked_list ~nodes:8 ~sweeps:2 ()) in
  let offsets = Hashtbl.create 8 in
  let bases = Hashtbl.create 8 in
  Array.iter
    (function
      | Event.Alloc { addr; size = 16; _ } -> Hashtbl.replace bases addr ()
      | _ -> ())
    (Sink.events r);
  Array.iter
    (function
      | Event.Access { instr; addr; _ } ->
        Hashtbl.iter
          (fun base () -> if addr >= base && addr < base + 16 then
              Hashtbl.replace offsets instr (addr - base))
          bases
      | _ -> ())
    (Sink.events r);
  Hashtbl.iter
    (fun _ off -> check_bool "field offsets only" true (off = 0 || off = 8))
    offsets

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "ormp_workloads"
    [
      ( "generic",
        [
          tc "all produce accesses" test_all_produce_accesses;
          tc "all deterministic" test_all_deterministic;
          tc "all have loads+stores+allocs" test_all_have_loads_and_stores;
          Alcotest.test_case "object-relative invariance (all workloads, all configs)" `Slow
            test_object_relative_invariance_all;
          tc "raw streams vary" test_raw_streams_vary;
        ] );
      ( "registry",
        [
          tc "spec order" test_registry_spec_order;
          tc "find" test_registry_find;
          tc "bench scale bigger" test_registry_bench_scale_is_bigger;
        ] );
      ( "character",
        [
          tc "mcf irregular" test_mcf_is_irregular;
          tc "twolf regular within objects" test_twolf_is_regular_within_objects;
          tc "parser pool is one object" test_parser_uses_custom_pool;
          tc "linked list fields" test_linked_list_fields;
        ] );
    ]
