open Ormp_analysis
open Ormp_vm
open Ormp_trace

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Collect                                                             *)
(* ------------------------------------------------------------------ *)

let list_prog = Ormp_workloads.Micro.linked_list ~nodes:16 ~sweeps:4 ()

let test_collect_basics () =
  let c = Collect.run list_prog in
  check_bool "tuples collected" true (Array.length c.Collect.tuples > 100);
  check_bool "lifetimes" true (List.length c.Collect.lifetimes >= 16);
  check_int "wild" 0 c.Collect.wild;
  check_int "node size" 16 (Collect.size_of c ~group:0 ~obj:0);
  check_bool "instr names resolve" true (String.length (Collect.instr_name c 0) > 0);
  (* time stamps are the array index *)
  Array.iteri (fun i tu -> check_int "time = index" i tu.Ormp_core.Tuple.time) c.Collect.tuples

(* ------------------------------------------------------------------ *)
(* Hot streams                                                         *)
(* ------------------------------------------------------------------ *)

let test_hot_streams_cycle () =
  let g = Ormp_sequitur.Sequitur.create () in
  (* (1 2 3 4) repeated 100 times: the hottest rule expands to a rotation
     of the cycle and is used ~100 times. *)
  for _ = 1 to 100 do
    List.iter (Ormp_sequitur.Sequitur.push g) [ 1; 2; 3; 4 ]
  done;
  match Hot_streams.of_grammar ~top:3 g with
  | [] -> Alcotest.fail "no hot streams"
  | hot :: _ ->
    check_bool "hot stream is hot" true (hot.Hot_streams.heat >= 100);
    check_bool "expansion within alphabet" true
      (Array.for_all (fun v -> v >= 1 && v <= 4) hot.Hot_streams.symbols)

let test_hot_streams_exclude_start_rule () =
  let g = Ormp_sequitur.Sequitur.create () in
  for _ = 1 to 50 do
    List.iter (Ormp_sequitur.Sequitur.push g) [ 7; 8 ]
  done;
  List.iter
    (fun h -> check_bool "start rule excluded" true (h.Hot_streams.rule <> 0))
    (Hot_streams.of_grammar g)

let test_hot_streams_uses_consistent () =
  (* The hottest rule's (uses * length) must never exceed the input length. *)
  let g = Ormp_sequitur.Sequitur.create () in
  let rng = Ormp_util.Prng.create ~seed:3 in
  for _ = 1 to 2000 do
    Ormp_sequitur.Sequitur.push g (Ormp_util.Prng.int rng 4)
  done;
  List.iter
    (fun h ->
      check_bool "heat bounded by input" true
        (h.Hot_streams.heat <= Ormp_sequitur.Sequitur.input_length g))
    (Hot_streams.of_grammar ~top:20 g)

let test_hot_streams_respects_min_length () =
  let g = Ormp_sequitur.Sequitur.create () in
  for _ = 1 to 30 do
    List.iter (Ormp_sequitur.Sequitur.push g) [ 1; 2; 1; 2; 3 ]
  done;
  List.iter
    (fun h ->
      check_bool "min length" true (Array.length h.Hot_streams.symbols >= 4))
    (Hot_streams.of_grammar ~min_length:4 g)

(* ------------------------------------------------------------------ *)
(* Affinity / field reordering                                         *)
(* ------------------------------------------------------------------ *)

(* Fields at 0 and 32 are always accessed back-to-back; 16 is touched
   separately. *)
let affine_prog =
  Program.make ~name:"affine" ~description:"hot pair (0,32), lukewarm 16" (fun e ->
      let site = Engine.instr e ~name:"a.alloc" Instr.Alloc_site in
      let ld1 = Engine.instr e ~name:"a.ld1" Instr.Load in
      let ld2 = Engine.instr e ~name:"a.ld2" Instr.Load in
      let ld3 = Engine.instr e ~name:"a.ld3" Instr.Load in
      let objs = Array.init 8 (fun _ -> Engine.alloc e ~site 40) in
      for _ = 1 to 50 do
        Array.iter
          (fun o ->
            Engine.load e ~instr:ld1 o 0;
            Engine.load e ~instr:ld2 o 32)
          objs;
        Array.iter (fun o -> Engine.load e ~instr:ld3 o 16) objs
      done)

let test_field_affinity () =
  let c = Collect.run affine_prog in
  let t = Affinity.analyze c ~group:0 in
  (match t.Affinity.weights with
  | ((0, 32), w) :: _ -> check_bool "dominant pair weight" true (w >= 300)
  | other :: _ ->
    Alcotest.failf "wrong dominant pair (%d,%d)" (fst (fst other)) (snd (fst other))
  | [] -> Alcotest.fail "no affinities");
  let order = Affinity.propose_order t in
  (match order with
  | a :: b :: _ ->
    check_bool "hot pair leads the order" true
      ((a = 0 && b = 32) || (a = 32 && b = 0))
  | _ -> Alcotest.fail "short order");
  check_bool "all fields present" true
    (List.sort compare order = [ 0; 16; 32 ])

let test_remap_packs_hot_pair () =
  let mapping =
    Affinity.remap ~old_order:[ 0; 32; 16 ] ~sizes:[ (0, 8); (16, 8); (32, 8) ]
  in
  Alcotest.(check (list (pair int int)))
    "packed layout"
    [ (0, 0); (32, 8); (16, 16) ]
    mapping

let test_remap_appends_missing () =
  let mapping = Affinity.remap ~old_order:[ 32 ] ~sizes:[ (0, 8); (32, 8) ] in
  Alcotest.(check (list (pair int int))) "missing fields appended" [ (32, 0); (0, 8) ] mapping

(* ------------------------------------------------------------------ *)
(* Clustering                                                          *)
(* ------------------------------------------------------------------ *)

(* Objects are used in fixed pairs (0,1), (2,3), ... but allocated with
   decoys between the partners, so a sequential layout splits partners
   across lines. *)
let paired_prog =
  Program.make ~name:"paired" ~description:"objects used in pairs" (fun e ->
      let site = Engine.instr e ~name:"p.alloc" Instr.Alloc_site in
      let decoy = Engine.instr e ~name:"p.decoy" Instr.Alloc_site in
      let ld = Engine.instr e ~name:"p.ld" Instr.Load in
      let rng = Engine.rng e in
      let objs =
        Array.init 32 (fun _ ->
            let o = Engine.alloc e ~site ~type_name:"obj" 32 in
            ignore (Engine.alloc e ~site:decoy ~type_name:"decoy" 96);
            o)
      in
      for _ = 1 to 100 do
        let pair = Ormp_util.Prng.int rng 16 in
        Engine.load e ~instr:ld objs.(2 * pair) 0;
        Engine.load e ~instr:ld objs.((2 * pair) + 1) 0
      done)

let test_clustering_finds_pairs () =
  let c = Collect.run paired_prog in
  let t = Clustering.analyze c ~group:0 in
  (match t.Clustering.affinities with
  | ((a, b), _) :: _ -> check_int "dominant affinity is a use-pair" 1 (abs (a - b))
  | [] -> Alcotest.fail "no affinities");
  (* partners should be adjacent in the proposed order *)
  let order = Array.of_list t.Clustering.order in
  let pos = Hashtbl.create 32 in
  Array.iteri (fun i s -> Hashtbl.replace pos s i) order;
  let adjacent = ref 0 in
  for pair = 0 to 15 do
    let pa = Hashtbl.find pos (2 * pair) and pb = Hashtbl.find pos ((2 * pair) + 1) in
    if abs (pa - pb) = 1 then incr adjacent
  done;
  check_bool "most partners adjacent" true (!adjacent >= 12)

let test_clustering_layout_improves_misses () =
  let c = Collect.run paired_prog in
  let t = Clustering.analyze c ~group:0 in
  let tiny_cache = { Ormp_cachesim.Cache.size_bytes = 512; line_bytes = 64; ways = 2 } in
  let before =
    Clustering.replay_miss_rate ~cache:tiny_cache c (Clustering.sequential_layout c)
  in
  let after =
    Clustering.replay_miss_rate ~cache:tiny_cache c (Clustering.clustered_layout c [ t ])
  in
  check_bool
    (Printf.sprintf "clustered layout reduces misses (%.3f -> %.3f)" before after)
    true (after < before)

let test_layouts_cover_all_objects () =
  let c = Collect.run paired_prog in
  let t = Clustering.analyze c ~group:0 in
  let check_layout name layout =
    List.iter
      (fun (l : Ormp_core.Omc.lifetime) ->
        check_bool
          (Printf.sprintf "%s covers g%d/o%d" name l.group l.serial)
          true
          (Hashtbl.mem layout (l.group, l.serial)))
      c.Collect.lifetimes
  in
  check_layout "sequential" (Clustering.sequential_layout c);
  check_layout "clustered" (Clustering.clustered_layout c [ t ])

(* ------------------------------------------------------------------ *)
(* Phase detection                                                     *)
(* ------------------------------------------------------------------ *)

(* Three clearly distinct phases: sweep object A, then B, then A again. *)
let phased_prog =
  Program.make ~name:"phased" ~description:"A-phase, B-phase, A-phase" (fun e ->
      let site_a = Engine.instr e ~name:"ph.alloc_a" Instr.Alloc_site in
      let site_b = Engine.instr e ~name:"ph.alloc_b" Instr.Alloc_site in
      let ld_a = Engine.instr e ~name:"ph.ld_a" Instr.Load in
      let ld_b = Engine.instr e ~name:"ph.ld_b" Instr.Load in
      let a = Engine.alloc e ~site:site_a (512 * 8) in
      let b = Engine.alloc e ~site:site_b (512 * 8) in
      let sweep ld o =
        for _ = 1 to 8 do
          for i = 0 to 511 do
            Engine.load e ~instr:ld o (i * 8)
          done
        done
      in
      sweep ld_a a;
      sweep ld_b b;
      sweep ld_a a)

let test_phase_detection () =
  let c = Collect.run phased_prog in
  let phases = Phase.detect ~window:512 c.Collect.tuples in
  check_int "three phases" 3 (List.length phases);
  (match phases with
  | [ p1; p2; p3 ] ->
    check_int "phase 1 dominated by group A" 0 (Phase.dominant_group p1);
    check_int "phase 2 dominated by group B" 1 (Phase.dominant_group p2);
    check_int "phase 3 dominated by group A" 0 (Phase.dominant_group p3);
    check_int "phases start at 0" 0 p1.Phase.start_time;
    check_int "phases abut (1-2)" p1.Phase.stop_time p2.Phase.start_time;
    check_int "phases abut (2-3)" p2.Phase.stop_time p3.Phase.start_time;
    check_int "phases end at stream end" (Array.length c.Collect.tuples) p3.Phase.stop_time
  | _ -> Alcotest.fail "expected exactly three phases")

let test_phase_stable_stream_is_one_phase () =
  let c = Collect.run list_prog in
  check_int "steady workload is one phase" 1
    (List.length (Phase.detect ~window:512 c.Collect.tuples))

let test_phase_empty () = check_int "empty" 0 (List.length (Phase.detect [||]))

let test_phase_threshold_sensitivity () =
  let c = Collect.run phased_prog in
  let strict = Phase.detect ~window:512 ~threshold:1.9 c.Collect.tuples in
  let lax = Phase.detect ~window:512 ~threshold:0.01 c.Collect.tuples in
  check_bool "strict threshold merges phases" true (List.length strict <= 3);
  check_bool "lax threshold splits at least as much" true
    (List.length lax >= List.length strict)

let test_affinity_unknown_group_is_empty () =
  let c = Collect.run affine_prog in
  let t = Affinity.analyze c ~group:99 in
  check_int "no weights" 0 (List.length t.Affinity.weights);
  check_int "no order" 0 (List.length (Affinity.propose_order t))

let test_clustering_single_object_group () =
  (* A group with one object can't cluster; the layout must still cover it. *)
  let c = Collect.run (Ormp_workloads.Micro.array_stride ~elems:16 ~sweeps:2 ()) in
  let t = Clustering.analyze c ~group:0 in
  check_int "one object in order" 1 (List.length t.Clustering.order);
  let layout = Clustering.clustered_layout c [ t ] in
  check_bool "covered" true (Hashtbl.mem layout (0, 0))

let test_hot_streams_on_workload_offsets () =
  (* The linked-list offset grammar's hottest stream must be the per-node
     field pattern (offsets 0 and 8). *)
  let p = Ormp_whomp.Whomp.profile (Ormp_workloads.Micro.linked_list ~nodes:16 ~sweeps:8 ()) in
  let g = List.assoc "offset" p.Ormp_whomp.Whomp.dims in
  match Hot_streams.of_grammar ~top:1 g with
  | [ h ] ->
    check_bool "hot stream over field offsets" true
      (Array.for_all (fun v -> v = 0 || v = 8) h.Hot_streams.symbols);
    check_bool "hot" true (h.Hot_streams.heat > 100)
  | _ -> Alcotest.fail "expected a hot stream" 

let prop_phases_partition =
  QCheck.Test.make ~name:"phases partition the stream" ~count:50
    QCheck.(pair (int_range 1 5) (int_range 100 2000))
    (fun (groups, n) ->
      let tuples =
        Array.init n (fun i ->
            {
              Ormp_core.Tuple.instr = 0;
              group = i * groups / n;
              obj = 0;
              offset = 0;
              time = i;
              is_store = false;
            })
      in
      let phases = Phase.detect ~window:64 tuples in
      match phases with
      | [] -> false
      | first :: _ ->
        let rec chained = function
          | [ last ] -> last.Phase.stop_time = n
          | a :: (b :: _ as rest) -> a.Phase.stop_time = b.Phase.start_time && chained rest
          | [] -> false
        in
        first.Phase.start_time = 0 && chained phases)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "ormp_analysis"
    [
      ("collect", [ tc "basics" test_collect_basics ]);
      ( "hot_streams",
        [
          tc "cycle" test_hot_streams_cycle;
          tc "start rule excluded" test_hot_streams_exclude_start_rule;
          tc "heat bounded" test_hot_streams_uses_consistent;
          tc "min length" test_hot_streams_respects_min_length;
          tc "workload offset grammar" test_hot_streams_on_workload_offsets;
        ] );
      ( "affinity",
        [
          tc "field affinity" test_field_affinity;
          tc "remap packs hot pair" test_remap_packs_hot_pair;
          tc "remap appends missing" test_remap_appends_missing;
          tc "unknown group empty" test_affinity_unknown_group_is_empty;
        ] );
      ( "clustering",
        [
          tc "finds pairs" test_clustering_finds_pairs;
          tc "single-object group" test_clustering_single_object_group;
          tc "layout improves misses" test_clustering_layout_improves_misses;
          tc "layouts cover all objects" test_layouts_cover_all_objects;
        ] );
      ( "phase",
        [
          tc "three phases" test_phase_detection;
          tc "steady stream" test_phase_stable_stream_is_one_phase;
          tc "empty" test_phase_empty;
          tc "threshold sensitivity" test_phase_threshold_sensitivity;
          QCheck_alcotest.to_alcotest prop_phases_partition;
        ] );
    ]
