(* Quickstart: write a workload, profile it both ways.

   Run with:  dune exec examples/quickstart.exe

   A workload is ordinary OCaml against the Engine API: allocate objects,
   load and store fields. The engine plays the role of the instrumented
   binary, emitting one probe event per executed memory operation; any
   profiler is just a sink for those events. *)

open Ormp_vm
open Ormp_trace

(* The paper's running example: build a linked list, then walk it reading
   the data field, bumping it, and following the next pointer. *)
let list_walk =
  Program.make ~name:"quickstart" ~description:"a linked-list build and walk" (fun e ->
      (* Static program points: one id per load/store/allocation site. *)
      let site = Engine.instr e ~name:"alloc_node" Instr.Alloc_site in
      let ld_data = Engine.instr e ~name:"ld node->data" Instr.Load in
      let st_data = Engine.instr e ~name:"st node->data" Instr.Store in
      let ld_next = Engine.instr e ~name:"ld node->next" Instr.Load in
      let nodes = Array.init 100 (fun _ -> Engine.alloc e ~site ~type_name:"node" 16) in
      for _sweep = 1 to 20 do
        Array.iter
          (fun n ->
            Engine.load e ~instr:ld_data n 0;
            Engine.store e ~instr:st_data n 0;
            Engine.load e ~instr:ld_next n 8)
          nodes
      done)

let () =
  (* 1. Peek at the object-relative stream: the CDC translates every raw
     access into (instr, group, object, offset, time). *)
  print_endline "First eight object-relative tuples:";
  let shown = ref 0 in
  let cdc =
    Ormp_core.Cdc.create
      ~site_name:(Printf.sprintf "site%d")
      ~on_tuple:(fun tu ->
        if !shown < 8 then begin
          Format.printf "  %a@." Ormp_core.Tuple.pp tu;
          incr shown
        end)
      ()
  in
  ignore (Runner.run list_walk (Ormp_core.Cdc.sink cdc));

  (* 2. WHOMP: the lossless whole-stream profiler. Four Sequitur grammars,
     one per dimension. *)
  let whomp = Ormp_whomp.Whomp.profile list_walk in
  Printf.printf "\nWHOMP collected %d accesses into the OMSG:\n"
    whomp.Ormp_whomp.Whomp.collected;
  List.iter
    (fun (dim, g) ->
      Printf.printf "  %-7s grammar: %4d symbols in %2d rules\n" dim
        (Ormp_sequitur.Sequitur.grammar_size g)
        (Ormp_sequitur.Sequitur.rule_count g))
    whomp.Ormp_whomp.Whomp.dims;
  let rasg = Ormp_whomp.Rasg.profile list_walk in
  Printf.printf "  OMSG %d bytes vs RASG (raw-address baseline) %d bytes\n"
    (Ormp_whomp.Whomp.omsg_bytes whomp)
    (Ormp_whomp.Rasg.bytes rasg);

  (* 3. LEAP: the lossy instruction-indexed profiler, plus its two
     post-processors. *)
  let leap = Ormp_leap.Leap.profile list_walk in
  Printf.printf "\nLEAP profile: %d bytes, %s compression, %s of accesses captured\n"
    (Ormp_leap.Leap.byte_size leap)
    (Ormp_util.Ascii.ratio (Ormp_leap.Leap.compression_ratio leap))
    (Ormp_util.Ascii.percent (Ormp_leap.Leap.accesses_captured leap));
  print_endline "Dependence frequencies (store -> load):";
  List.iter
    (fun d -> Format.printf "  %a@." Ormp_baselines.Dep_types.pp d)
    (Ormp_leap.Mdf.compute leap);
  print_endline "Strongly-strided instructions:";
  List.iter
    (fun (i, s) -> Printf.printf "  instr %d: stride %d\n" i s)
    (Ormp_leap.Strides.strongly_strided leap)
