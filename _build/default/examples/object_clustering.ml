(* Object clustering from the object-relative profile (the paper's
   reference [4], and §3.2's "use of object-level grammar for object
   clustering").

   Run with:  dune exec examples/object_clustering.exe

   The workload uses node objects in fixed pairs, but allocation order
   interleaves them with decoys, so partners end up far apart in memory.
   Raw-address profiles cannot even express "these two objects" — the
   serial numbers of the object-relative profile can. The example mines
   object affinities, proposes a clustered layout, and scores both layouts
   with the cache simulator. *)

open Ormp_vm
open Ormp_trace
open Ormp_analysis

let program =
  Program.make ~name:"clustering-demo" ~description:"pair-affine objects, scattered by decoys"
    (fun e ->
      let site = Engine.instr e ~name:"alloc_node" Instr.Alloc_site in
      let site_decoy = Engine.instr e ~name:"alloc_decoy" Instr.Alloc_site in
      let ld = Engine.instr e ~name:"ld node" Instr.Load in
      let st = Engine.instr e ~name:"st node" Instr.Store in
      let rng = Engine.rng e in
      let objs =
        Array.init 64 (fun _ ->
            let o = Engine.alloc e ~site ~type_name:"node" 32 in
            ignore (Engine.alloc e ~site:site_decoy ~type_name:"decoy" 96);
            o)
      in
      for _ = 1 to 400 do
        (* each transaction touches one fixed pair of nodes *)
        let pair = Ormp_util.Prng.int rng 32 in
        Engine.load e ~instr:ld objs.(2 * pair) 0;
        Engine.load e ~instr:ld objs.((2 * pair) + 1) 0;
        if Ormp_util.Prng.chance rng 0.3 then Engine.store e ~instr:st objs.(2 * pair) 8
      done)

let () =
  let c = Collect.run program in
  let t = Clustering.analyze c ~group:0 in

  print_endline "strongest object affinities (serial pairs, co-access counts):";
  List.iteri
    (fun i ((a, b), w) -> if i < 6 then Printf.printf "  o%-3d o%-3d  %d\n" a b w)
    t.Clustering.affinities;

  Printf.printf "\nproposed placement order (first 16): %s ...\n"
    (String.concat " "
       (List.filteri (fun i _ -> i < 16) t.Clustering.order |> List.map string_of_int));

  (* Score both layouts on a small L1d so the effect is visible. *)
  let cache = { Ormp_cachesim.Cache.size_bytes = 2048; line_bytes = 64; ways = 2 } in
  let before = Clustering.replay_miss_rate ~cache c (Clustering.sequential_layout c) in
  let after = Clustering.replay_miss_rate ~cache c (Clustering.clustered_layout c [ t ]) in
  Printf.printf "\ncache miss rate, allocation-order layout : %s\n"
    (Ormp_util.Ascii.percent before);
  Printf.printf "cache miss rate, clustered layout        : %s\n"
    (Ormp_util.Ascii.percent after);
  Printf.printf "-> %.1fx fewer misses from profile-guided placement\n" (before /. after)
