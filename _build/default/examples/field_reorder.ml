(* Field reordering from the offset grammar (§3.2).

   Run with:  dune exec examples/field_reorder.exe

   The paper: "A frequently repeated offset sequence, say (0, 36)*, along
   with the object lifetime information may reveal field-reordering
   opportunity to the compiler to take advantage of spatial locality."

   The workload walks records whose two hot fields sit at offsets 0 and 36
   of a 64-byte struct — far enough apart to straddle a cache-line
   boundary when the object is unluckily placed. The example collects a
   WHOMP profile, mines the offset-dimension Sequitur grammar for the
   dominant repeated offset digram, and proposes the reorder. *)

open Ormp_vm
open Ormp_trace

let record_size = 64
let hot_a = 0
let hot_b = 36

let workload =
  Program.make ~name:"field-reorder" ~description:"hot field pair at offsets 0 and 36" (fun e ->
      let site = Engine.instr e ~name:"alloc_record" Instr.Alloc_site in
      let ld_a = Engine.instr e ~name:"ld rec->a" Instr.Load in
      let ld_b = Engine.instr e ~name:"ld rec->b" Instr.Load in
      let ld_cold = Engine.instr e ~name:"ld rec->cold" Instr.Load in
      let rng = Engine.rng e in
      let records =
        Array.init 64 (fun _ -> Engine.alloc e ~site ~type_name:"record" record_size)
      in
      for _pass = 1 to 40 do
        Array.iter
          (fun r ->
            Engine.load e ~instr:ld_a r hot_a;
            Engine.load e ~instr:ld_b r hot_b;
            (* cold fields are touched rarely *)
            if Ormp_util.Prng.chance rng 0.05 then
              Engine.load e ~instr:ld_cold r (8 * (1 + Ormp_util.Prng.int rng 3)))
          records
      done)

(* Count adjacent offset pairs by expanding the offset grammar. In a real
   consumer one would walk the grammar rules directly; the expansion keeps
   the example transparent. *)
let digram_counts offsets =
  let counts = Hashtbl.create 16 in
  for i = 0 to Array.length offsets - 2 do
    let d = (offsets.(i), offsets.(i + 1)) in
    Hashtbl.replace counts d (1 + Option.value ~default:0 (Hashtbl.find_opt counts d))
  done;
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) counts []
  |> List.sort (fun (_, c1) (_, c2) -> compare c2 c1)

let () =
  let p = Ormp_whomp.Whomp.profile workload in
  let offset_grammar = List.assoc "offset" p.Ormp_whomp.Whomp.dims in
  Printf.printf "offset grammar: %d symbols in %d rules (input was %d accesses)\n"
    (Ormp_sequitur.Sequitur.grammar_size offset_grammar)
    (Ormp_sequitur.Sequitur.rule_count offset_grammar)
    (Ormp_sequitur.Sequitur.input_length offset_grammar);

  let offsets = Ormp_sequitur.Sequitur.expand offset_grammar in
  (match digram_counts offsets with
  | ((a, b), count) :: _ ->
    Printf.printf "dominant offset digram: (%d, %d)* repeated %d times\n" a b count;
    let gap = abs (b - a) in
    if gap > 16 then begin
      Printf.printf
        "fields at +%d and +%d are accessed back-to-back but sit %d bytes apart;\n" a b gap;
      Printf.printf
        "reordering the record to place them adjacently would put the pair in one cache line.\n"
    end
  | [] -> print_endline "no repeated digram found");

  (* The auxiliary lifetime output shows the objects are long-lived, so a
     static layout change (rather than a pool-time one) is applicable. *)
  let lts = p.Ormp_whomp.Whomp.lifetimes in
  let live_to_end = List.length (List.filter (fun l -> l.Ormp_core.Omc.free_time = None) lts) in
  Printf.printf "lifetime check: %d/%d records never freed during the run\n" live_to_end
    (List.length lts)
