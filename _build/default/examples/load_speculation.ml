(* Speculative load reordering from the LEAP dependence profile (§4).

   Run with:  dune exec examples/load_speculation.exe

   "Speculative load reordering ... is beneficial only if the load is
   independent of the store or is dependent with a low frequency, because
   of the relatively high recovery overhead."

   The example profiles a SPEC-like workload with LEAP, then classifies
   each load against each earlier store: loads whose worst dependence
   frequency is below the recovery threshold are speculation candidates.
   The lossless profiler replays the same trace to check how the decisions
   would have fared. *)

module Dt = Ormp_baselines.Dep_types

(* With a ~1% misspeculation recovery cost model, hoisting pays below a
   few percent dependence frequency. *)
let threshold = 0.05

let () =
  let entry = Ormp_workloads.Registry.find "186.crafty-like" in
  let program = Ormp_workloads.Registry.program entry in

  (* One run feeds both LEAP and the (slow, exact) lossless profiler. *)
  let leap_sink, leap_fin = Ormp_leap.Leap.sink ~site_name:(Printf.sprintf "site%d") () in
  let truth = Ormp_baselines.Lossless_dep.create () in
  let result =
    Ormp_vm.Runner.run program
      (Ormp_trace.Sink.fanout [ leap_sink; Ormp_baselines.Lossless_dep.sink truth ])
  in
  let table = result.Ormp_vm.Runner.table in
  let leap = leap_fin ~elapsed:result.Ormp_vm.Runner.elapsed in
  let name i = (Ormp_trace.Instr.info table i).Ormp_trace.Instr.name in

  let est = Ormp_leap.Mdf.compute leap in
  let exact = Ormp_baselines.Lossless_dep.deps truth in

  Printf.printf "%-28s %-12s %-18s %s\n" "load" "worst MDF" "decision" "exact worst MDF";
  List.iter
    (fun load ->
      let worst deps =
        List.fold_left
          (fun acc store -> max acc (Dt.find deps ~store ~load))
          0.0
          (Ormp_leap.Leap.stores leap)
      in
      let est_worst = worst est in
      let exact_worst = worst exact in
      let decision = if est_worst < threshold then "SPECULATE" else "keep ordered" in
      let verdict =
        if (est_worst < threshold) = (exact_worst < threshold) then "(right)"
        else "(WRONG)"
      in
      Printf.printf "%-28s %-12s %-18s %s %s\n" (name load)
        (Ormp_util.Ascii.percent est_worst)
        decision
        (Ormp_util.Ascii.percent exact_worst)
        verdict)
    (Ormp_leap.Leap.loads leap)
