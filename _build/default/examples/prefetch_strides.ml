(* Stride-based prefetching from the LEAP profile (§4.2.2).

   Run with:  dune exec examples/prefetch_strides.exe

   A stride prefetcher wants the instructions "which access memory with
   one particular stride most of the time". The example runs two SPEC-like
   workloads, asks LEAP for its strongly-strided instructions, and prints
   the prefetch directives a compiler pass would emit — checking each
   against the lossless stride profiler. *)

let cache_line = 64

let analyse name =
  let entry = Ormp_workloads.Registry.find name in
  let program = Ormp_workloads.Registry.program entry in
  let leap_sink, leap_fin = Ormp_leap.Leap.sink ~site_name:(Printf.sprintf "site%d") () in
  let wu = Ormp_baselines.Lossless_stride.create () in
  let result =
    Ormp_vm.Runner.run program
      (Ormp_trace.Sink.fanout [ leap_sink; Ormp_baselines.Lossless_stride.sink wu ])
  in
  let table = result.Ormp_vm.Runner.table in
  let leap = leap_fin ~elapsed:result.Ormp_vm.Runner.elapsed in
  let iname i = (Ormp_trace.Instr.info table i).Ormp_trace.Instr.name in
  let real = Ormp_baselines.Lossless_stride.strongly_strided wu in
  Printf.printf "=== %s ===\n" name;
  let found = Ormp_leap.Strides.strongly_strided leap in
  List.iter
    (fun (instr, stride) ->
      let confirmed = List.mem_assoc instr real in
      if stride = 0 then
        Printf.printf "  %-24s stride 0 (re-references one location; no prefetch) %s\n"
          (iname instr)
          (if confirmed then "" else "[not confirmed by lossless]")
      else
        (* Prefetch far enough ahead to cover a line. *)
        let distance = max 1 (cache_line / abs stride) in
        Printf.printf "  %-24s stride %+d -> prefetch %d iterations ahead %s\n" (iname instr)
          stride distance
          (if confirmed then "" else "[not confirmed by lossless]"))
    found;
  let found_ids = List.map fst found in
  let missed = List.filter (fun (i, _) -> not (List.mem i found_ids)) real in
  if missed <> [] then begin
    Printf.printf "  missed (lossless found, LEAP did not):\n";
    List.iter (fun (i, s) -> Printf.printf "    %-24s stride %+d\n" (iname i) s) missed
  end;
  print_newline ()

let () = List.iter analyse [ "164.gzip-like"; "256.bzip2-like"; "181.mcf-like" ]
