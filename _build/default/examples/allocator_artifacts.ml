(* The paper's Figures 1 and 2, live: allocator and layout artifacts hide
   access regularity in raw addresses, and object-relative translation
   removes them.

   Run with:  dune exec examples/allocator_artifacts.exe

   The same linked-list walk runs under five memory configurations
   (different heap allocators, shifted data segments). Raw address streams
   differ in every run; the object-relative stream — and therefore the
   WHOMP profile — is bit-for-bit identical. *)

open Ormp_vm

let program = Ormp_workloads.Micro.linked_list ~nodes:12 ~sweeps:2 ()

let raw_prefix config =
  let addrs = ref [] in
  let sink = function
    | Ormp_trace.Event.Access { addr; _ } -> if List.length !addrs < 6 then addrs := addr :: !addrs
    | _ -> ()
  in
  ignore (Runner.run ~config program sink);
  List.rev !addrs

let or_prefix config =
  let tuples = ref [] in
  let cdc =
    Ormp_core.Cdc.create
      ~site_name:(Printf.sprintf "s%d")
      ~on_tuple:(fun tu -> if List.length !tuples < 6 then tuples := tu :: !tuples)
      ()
  in
  ignore (Runner.run ~config program (Ormp_core.Cdc.sink cdc));
  List.rev !tuples

let () =
  let configs = Config.variants Config.default in
  print_endline "Raw addresses of the first six accesses, per configuration:";
  List.iter
    (fun c ->
      Printf.printf "  %-22s" (Config.name c);
      List.iter (fun a -> Printf.printf " %#010x" a) (raw_prefix c);
      print_newline ())
    configs;

  print_endline "\nObject-relative view of the same six accesses, per configuration:";
  List.iter
    (fun c ->
      Printf.printf "  %-22s" (Config.name c);
      List.iter (fun tu -> Format.printf " %a" Ormp_core.Tuple.pp tu) (or_prefix c);
      print_newline ())
    configs;

  (* The full profiles agree too: the OMSG is invariant, the raw grammar
     is not even the same size. *)
  print_endline "\nProfile sizes per configuration (bytes):";
  Printf.printf "  %-22s %12s %12s\n" "config" "RASG (raw)" "OMSG (obj-rel)";
  List.iter
    (fun c ->
      let rasg = Ormp_whomp.Rasg.profile ~config:c program in
      let whomp = Ormp_whomp.Whomp.profile ~config:c program in
      Printf.printf "  %-22s %12d %12d\n" (Config.name c) (Ormp_whomp.Rasg.bytes rasg)
        (Ormp_whomp.Whomp.omsg_bytes whomp))
    configs;
  print_endline
    "\nEvery OMSG column entry is identical: object-relativity has factored the\n\
     allocator and linker artifacts out of the profile."
