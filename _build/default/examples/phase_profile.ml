(* Phase-cognizant profiling — the paper's §6 future work, implemented.

   Run with:  dune exec examples/phase_profile.exe

   "Another avenue to explore is to make use of recent results on phase
   detection and prediction to profile references in a phase cognizant
   manner."

   The bzip2 stand-in runs through distinct phases (fill, bucket count,
   suffix sort, move-to-front) that touch different data structures. The
   example detects those phases from the group-mix signature of the
   object-relative stream, then compares a monolithic LEAP compressor
   against one whose LMAD budget is reset at phase boundaries: phase
   boundaries are exactly where access patterns change, so per-phase
   descriptors capture more of the stream with the same budget. *)

open Ormp_analysis
module C = Ormp_lmad.Compressor

let capture_with_budget tuples ~ranges =
  (* One (instr, group) -> compressor table per range; fresh tables model a
     phase-cognizant profiler that re-opens its budget at boundaries. *)
  let captured = ref 0 and total = ref 0 in
  List.iter
    (fun (lo, hi) ->
      let streams = Hashtbl.create 64 in
      for i = lo to hi - 1 do
        let tu = tuples.(i) in
        let key = (tu.Ormp_core.Tuple.instr, tu.Ormp_core.Tuple.group) in
        let comp =
          match Hashtbl.find_opt streams key with
          | Some c -> c
          | None ->
            let c = C.create ~dims:1 () in
            Hashtbl.replace streams key c;
            c
        in
        ignore (C.add comp [| tu.Ormp_core.Tuple.offset |])
      done;
      Hashtbl.iter
        (fun _ c ->
          captured := !captured + C.captured c;
          total := !total + C.total c)
        streams)
    ranges;
  float_of_int !captured /. float_of_int (max 1 !total)

let () =
  let entry = Ormp_workloads.Registry.find "256.bzip2-like" in
  let c = Collect.run (Ormp_workloads.Registry.program entry) in
  let tuples = c.Collect.tuples in

  let phases = Phase.detect tuples in
  Printf.printf "detected %d phases over %d accesses:\n" (List.length phases)
    (Array.length tuples);
  List.iter
    (fun p ->
      let label =
        let g = Phase.dominant_group p in
        Collect.instr_name c (List.nth c.Collect.groups g).Ormp_core.Omc.site
      in
      Format.printf "  %a   (dominant: %s)@." Phase.pp p label)
    phases;

  (* Index ranges: time stamps equal indices in a collected stream. *)
  let whole = [ (0, Array.length tuples) ] in
  let per_phase = List.map (fun p -> (p.Phase.start_time, p.Phase.stop_time)) phases in
  let mono = capture_with_budget tuples ~ranges:whole in
  let phased = capture_with_budget tuples ~ranges:per_phase in
  Printf.printf "\noffset-stream capture, monolithic budget   : %s\n"
    (Ormp_util.Ascii.percent mono);
  Printf.printf "offset-stream capture, per-phase budget    : %s\n"
    (Ormp_util.Ascii.percent phased);
  if phased > mono then
    print_endline "-> resetting the LMAD budget at phase boundaries captures more behaviour"
