examples/object_clustering.mli:
