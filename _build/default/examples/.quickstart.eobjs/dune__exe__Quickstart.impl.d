examples/quickstart.ml: Array Engine Format Instr List Ormp_baselines Ormp_core Ormp_leap Ormp_sequitur Ormp_trace Ormp_util Ormp_vm Ormp_whomp Printf Program Runner
