examples/field_reorder.mli:
