examples/allocator_artifacts.ml: Config Format List Ormp_core Ormp_trace Ormp_vm Ormp_whomp Ormp_workloads Printf Runner
