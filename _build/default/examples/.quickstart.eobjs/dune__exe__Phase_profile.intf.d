examples/phase_profile.mli:
