examples/quickstart.mli:
