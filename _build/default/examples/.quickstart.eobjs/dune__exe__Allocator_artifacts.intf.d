examples/allocator_artifacts.mli:
