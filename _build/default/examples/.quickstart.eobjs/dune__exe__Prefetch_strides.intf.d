examples/prefetch_strides.mli:
