examples/load_speculation.mli:
