examples/field_reorder.ml: Array Engine Hashtbl Instr List Option Ormp_core Ormp_sequitur Ormp_trace Ormp_util Ormp_vm Ormp_whomp Printf Program
