examples/load_speculation.ml: List Ormp_baselines Ormp_leap Ormp_trace Ormp_util Ormp_vm Ormp_workloads Printf
