examples/prefetch_strides.ml: List Ormp_baselines Ormp_leap Ormp_trace Ormp_vm Ormp_workloads Printf
