examples/phase_profile.ml: Array Collect Format Hashtbl List Ormp_analysis Ormp_core Ormp_lmad Ormp_util Ormp_workloads Phase Printf
