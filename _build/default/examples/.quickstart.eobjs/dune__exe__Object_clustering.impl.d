examples/object_clustering.ml: Array Clustering Collect Engine Instr List Ormp_analysis Ormp_cachesim Ormp_trace Ormp_util Ormp_vm Printf Program String
