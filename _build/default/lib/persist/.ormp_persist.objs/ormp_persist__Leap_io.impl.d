lib/persist/leap_io.ml: Array Hashtbl List Ormp_leap Ormp_lmad Ormp_util Printf Result
