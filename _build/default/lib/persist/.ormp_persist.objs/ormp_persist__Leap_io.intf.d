lib/persist/leap_io.mli: Ormp_leap Ormp_util
