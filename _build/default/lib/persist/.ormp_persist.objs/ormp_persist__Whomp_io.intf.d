lib/persist/whomp_io.mli: Ormp_util Ormp_whomp
