lib/persist/whomp_io.ml: Hashtbl List Ormp_core Ormp_sequitur Ormp_util Ormp_whomp Printf Result String
