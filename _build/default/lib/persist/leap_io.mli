(** LEAP profile persistence.

    Figure 4's pipeline ends with "compressed profile → post-processor":
    collection and post-processing are separate runs in practice, so
    profiles must survive on disk. The format is a versioned s-expression;
    {!load} rebuilds a {!Ormp_leap.Leap.profile} on which {!Ormp_leap.Mdf}
    and {!Ormp_leap.Strides} run exactly as on a fresh one (the open
    descriptor of each stream is finalized at save time). *)

val save : string -> Ormp_leap.Leap.profile -> unit
(** @raise Sys_error on I/O failure. *)

val load : string -> (Ormp_leap.Leap.profile, string) result

val to_sexp : Ormp_leap.Leap.profile -> Ormp_util.Sexp.t
val of_sexp : Ormp_util.Sexp.t -> (Ormp_leap.Leap.profile, string) result
