(** WHOMP (OMSG) profile persistence.

    The four dimension grammars are written as their rules — the compact
    form is exactly the profile. Loading replays each grammar's expansion
    through a fresh Sequitur compressor; the algorithm is deterministic,
    so the reloaded grammars are structurally identical to the saved ones
    (checked by the round-trip tests). Auxiliary group/lifetime output is
    saved alongside. *)

val save : string -> Ormp_whomp.Whomp.profile -> unit
val load : string -> (Ormp_whomp.Whomp.profile, string) result

val to_sexp : Ormp_whomp.Whomp.profile -> Ormp_util.Sexp.t
val of_sexp : Ormp_util.Sexp.t -> (Ormp_whomp.Whomp.profile, string) result
