type t = {
  window : int;
  last_store : (int, int * int) Hashtbl.t; (* address -> (store instr, store seq) *)
  conflicts : (int * int, int) Hashtbl.t;
  execs : (int, int) Hashtbl.t;
  mutable store_seq : int; (* stores executed so far *)
}

let default_window = 4096

let create ?(window = default_window) () =
  if window <= 0 then invalid_arg "Connors.create: window must be positive";
  {
    window;
    last_store = Hashtbl.create 4096;
    conflicts = Hashtbl.create 256;
    execs = Hashtbl.create 64;
    store_seq = 0;
  }

let bump tbl key = Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let sink t =
  fun (ev : Ormp_trace.Event.t) ->
    match ev with
    | Access { instr; addr; is_store = true; _ } ->
      t.store_seq <- t.store_seq + 1;
      Hashtbl.replace t.last_store addr (instr, t.store_seq)
    | Access { instr; addr; is_store = false; _ } -> (
      bump t.execs instr;
      match Hashtbl.find_opt t.last_store addr with
      | Some (st, seq) when seq > t.store_seq - t.window ->
        (* The matching store is still inside the history window. *)
        bump t.conflicts (st, instr)
      | _ -> ())
    | Alloc _ | Free _ -> ()

let load_execs t load = Option.value ~default:0 (Hashtbl.find_opt t.execs load)

let deps t =
  Hashtbl.fold
    (fun (store, load) count acc ->
      let total = load_execs t load in
      if total = 0 then acc
      else { Dep_types.store; load; freq = float_of_int count /. float_of_int total } :: acc)
    t.conflicts []
  |> List.sort (fun a b -> compare (a.Dep_types.store, a.load) (b.Dep_types.store, b.load))

let profile ?config ?window program =
  let t = create ?window () in
  ignore (Ormp_vm.Runner.run ?config program (sink t));
  t
