type per_instr = {
  mutable last_addr : int option;
  mutable execs : int;
  stride_counts : (int, int) Hashtbl.t;
}

type t = { instrs : (int, per_instr) Hashtbl.t }

let create () = { instrs = Hashtbl.create 64 }

let per t instr =
  match Hashtbl.find_opt t.instrs instr with
  | Some p -> p
  | None ->
    let p = { last_addr = None; execs = 0; stride_counts = Hashtbl.create 16 } in
    Hashtbl.replace t.instrs instr p;
    p

let sink t =
  fun (ev : Ormp_trace.Event.t) ->
    match ev with
    | Access { instr; addr; _ } ->
      let p = per t instr in
      p.execs <- p.execs + 1;
      (match p.last_addr with
      | Some prev ->
        let stride = addr - prev in
        Hashtbl.replace p.stride_counts stride
          (1 + Option.value ~default:0 (Hashtbl.find_opt p.stride_counts stride))
      | None -> ());
      p.last_addr <- Some addr
    | Alloc _ | Free _ -> ()

let strides t instr =
  match Hashtbl.find_opt t.instrs instr with
  | None -> []
  | Some p ->
    Hashtbl.fold (fun s c acc -> (s, c) :: acc) p.stride_counts []
    |> List.sort (fun (_, c1) (_, c2) -> compare c2 c1)

let execs t instr =
  match Hashtbl.find_opt t.instrs instr with None -> 0 | Some p -> p.execs

let strongly_strided ?(threshold = 0.7) t =
  Hashtbl.fold
    (fun instr p acc ->
      if p.execs < 2 then acc
      else
        let total = p.execs - 1 in
        let dominant =
          Hashtbl.fold
            (fun s c best ->
              match best with Some (_, bc) when bc >= c -> best | _ -> Some (s, c))
            p.stride_counts None
        in
        match dominant with
        | Some (s, c) when float_of_int c >= threshold *. float_of_int total -> (instr, s) :: acc
        | _ -> acc)
    t.instrs []
  |> List.sort compare

let profile ?config program =
  let t = create () in
  ignore (Ormp_vm.Runner.run ?config program (sink t));
  t
