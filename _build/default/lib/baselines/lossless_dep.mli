(** The lossless memory-dependence profiler (§4.2.1's ground truth).

    "A lossless raw-address based profiler which records the dependence
    information of all the memory operations in a program" — it remembers
    the last writer of every location, so each load execution is charged to
    exactly one store instruction (read-after-write, last-writer
    semantics, which is what makes per-load frequencies sum to at most
    100% as in the paper's example). It is exact, and correspondingly slow
    and memory-hungry; it exists to calibrate the lossy profilers. *)

type t

val create : unit -> t
val sink : t -> Ormp_trace.Sink.t

val deps : t -> Dep_types.dep list
(** All (store, load) pairs with at least one conflict, frequency =
    conflicts / load executions. Sorted by (store, load). *)

val load_execs : t -> int -> int
(** Executions seen for a load instruction. *)

val locations : t -> int
(** Distinct addresses ever written (the profiler's memory footprint). *)

val profile : ?config:Ormp_vm.Config.t -> Ormp_vm.Program.t -> t
(** Convenience: run the program under this profiler alone. *)
