lib/baselines/lossless_stride.mli: Ormp_trace Ormp_vm
