lib/baselines/lossless_dep.mli: Dep_types Ormp_trace Ormp_vm
