lib/baselines/dep_types.ml: Format Hashtbl List
