lib/baselines/connors.mli: Dep_types Ormp_trace Ormp_vm
