lib/baselines/lossless_stride.ml: Hashtbl List Option Ormp_trace Ormp_vm
