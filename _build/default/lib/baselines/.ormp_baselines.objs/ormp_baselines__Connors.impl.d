lib/baselines/connors.ml: Dep_types Hashtbl List Option Ormp_trace Ormp_vm
