lib/baselines/dep_types.mli: Format
