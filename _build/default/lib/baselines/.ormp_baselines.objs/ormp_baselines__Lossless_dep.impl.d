lib/baselines/lossless_dep.ml: Dep_types Hashtbl List Option Ormp_trace Ormp_vm
