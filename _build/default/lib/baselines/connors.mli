(** Re-implementation of Connors' windowed memory-dependence profiler
    (§4.2.1's practical competitor).

    The profiler keeps "addresses recorded in a small history window" of
    the most recent store executions; each load is checked against that
    window only. Dependences older than the window are invisible, so the
    profiler "often misses some of the dependences" while "not
    overestimating the frequency for any dependent pairs" — the one-sided
    error distribution of Figure 7. The paper sizes the window so running
    time is comparable to LEAP's; {!default_window} matches that spirit. *)

type t

val default_window : int
(** 4096 recent stores. The paper chose "a window size such that it
    exhibits a running time similar to LEAP"; window size barely affects
    our implementation's speed (the window is seq-number checked, not
    scanned), so the default is instead sized to make Connors competitive
    on short- and medium-range dependences, which is the regime the
    paper's comparison operates in. The window ablation sweeps it. *)

val create : ?window:int -> unit -> t
val sink : t -> Ormp_trace.Sink.t

val deps : t -> Dep_types.dep list
(** Same shape and semantics as {!Lossless_dep.deps}, but computed from
    window hits only. *)

val load_execs : t -> int -> int

val profile : ?config:Ormp_vm.Config.t -> ?window:int -> Ormp_vm.Program.t -> t
