type t = {
  last_writer : (int, int) Hashtbl.t; (* address -> store instruction *)
  conflicts : (int * int, int) Hashtbl.t; (* (store, load) -> count *)
  execs : (int, int) Hashtbl.t; (* load instruction -> executions *)
}

let create () =
  { last_writer = Hashtbl.create 4096; conflicts = Hashtbl.create 256; execs = Hashtbl.create 64 }

let bump tbl key = Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let sink t =
  fun (ev : Ormp_trace.Event.t) ->
    match ev with
    | Access { instr; addr; is_store = true; _ } -> Hashtbl.replace t.last_writer addr instr
    | Access { instr; addr; is_store = false; _ } ->
      bump t.execs instr;
      (match Hashtbl.find_opt t.last_writer addr with
      | Some st -> bump t.conflicts (st, instr)
      | None -> ())
    | Alloc _ | Free _ -> ()

let load_execs t load = Option.value ~default:0 (Hashtbl.find_opt t.execs load)

let deps t =
  Hashtbl.fold
    (fun (store, load) count acc ->
      let total = load_execs t load in
      if total = 0 then acc
      else { Dep_types.store; load; freq = float_of_int count /. float_of_int total } :: acc)
    t.conflicts []
  |> List.sort (fun a b -> compare (a.Dep_types.store, a.load) (b.Dep_types.store, b.load))

let locations t = Hashtbl.length t.last_writer

let profile ?config program =
  let t = create () in
  ignore (Ormp_vm.Runner.run ?config program (sink t));
  t
