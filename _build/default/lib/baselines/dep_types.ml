type dep = { store : int; load : int; freq : float }

let pp fmt d = Format.fprintf fmt "(st%d, ld%d, %.1f%%)" d.store d.load (100.0 *. d.freq)

let find deps ~store ~load =
  match List.find_opt (fun d -> d.store = store && d.load = load) deps with
  | Some d -> d.freq
  | None -> 0.0

let pairs outputs =
  let tbl = Hashtbl.create 64 in
  List.iter (List.iter (fun d -> Hashtbl.replace tbl (d.store, d.load) ())) outputs;
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) tbl [])
