(** Shared output shape of the memory-dependence profilers. *)

type dep = {
  store : int;  (** store instruction id *)
  load : int;  (** load instruction id *)
  freq : float;
      (** memory dependence frequency: conflicts with [store] / total
          executions of [load] (§4.2.1) *)
}

val pp : Format.formatter -> dep -> unit

val find : dep list -> store:int -> load:int -> float
(** Frequency of a pair, 0 when absent. *)

val pairs : dep list list -> (int * int) list
(** De-duplicated (store, load) universe across several profilers'
    outputs, sorted. *)
