(** The lossless stride profiler (§4.2.2's ground truth).

    A re-implementation of Wu's stride profiler "with a setting to make it
    lossless and track all the strides for a given instruction": for every
    load/store instruction it records the full multiset of deltas between
    consecutive raw addresses the instruction touches. An instruction is
    {e strongly (single-)strided} when one stride accounts for at least
    70% of its accesses (the paper adopts Wu's definition). *)

type t

val create : unit -> t
val sink : t -> Ormp_trace.Sink.t

val strides : t -> int -> (int * int) list
(** [(stride, occurrences)] multiset for an instruction, most frequent
    first. *)

val execs : t -> int -> int
(** Executions seen for the instruction. *)

val strongly_strided : ?threshold:float -> t -> (int * int) list
(** Instructions (with their dominant stride) whose dominant stride covers
    at least [threshold] (default 0.7) of their stride instances.
    Instructions executed fewer than 2 times never qualify. Sorted by
    instruction id. *)

val profile : ?config:Ormp_vm.Config.t -> Ormp_vm.Program.t -> t
