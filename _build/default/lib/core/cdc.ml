type t = {
  omc : Omc.t;
  on_tuple : Tuple.t -> unit;
  on_wild : Ormp_trace.Event.t -> unit;
  mutable clock : int;
  mutable wild : int;
}

let create ?grouping ?(on_wild = fun _ -> ()) ~site_name ~on_tuple () =
  { omc = Omc.create ?grouping ~site_name (); on_tuple; on_wild; clock = 0; wild = 0 }

let sink t =
  fun (ev : Ormp_trace.Event.t) ->
    match ev with
    | Access { instr; addr; size = _; is_store } -> (
      match Omc.translate t.omc addr with
      | Some (group, obj, offset) ->
        let tuple = { Tuple.instr; group; obj; offset; time = t.clock; is_store } in
        t.clock <- t.clock + 1;
        t.on_tuple tuple
      | None ->
        t.wild <- t.wild + 1;
        t.on_wild ev)
    | Alloc { site; addr; size; type_name } ->
      Omc.on_alloc t.omc ~time:t.clock ~site ~addr ~size ~type_name
    | Free { addr } -> Omc.on_free t.omc ~time:t.clock ~addr

let omc t = t.omc
let collected t = t.clock
let wild t = t.wild
