(** The object-relative access tuple (§2.1-2.2).

    Object-relative translation turns each collected [(instruction,
    raw-address)] access into

    {v (instruction-id, group, object, offset, time-stamp) v}

    where [group] identifies the object's allocation site (or type),
    [object] is the serial number of the object within its group, [offset]
    is the byte offset inside the object, and [time] counts collected
    accesses from 0 (§2.2). *)

type t = {
  instr : int;
  group : int;
  obj : int;
  offset : int;
  time : int;
  is_store : bool;
      (** not part of the paper's 5-tuple, but every profiler consuming the
          stream needs to tell loads from stores; keeping it here saves a
          side table *)
}

val pp : Format.formatter -> t -> unit
