module Ri = Ormp_interval.Range_index
module Vec = Ormp_util.Vec

type grouping = [ `Site | `Type ]

type group_info = { gid : int; site : int; label : string; mutable population : int }

type lifetime = {
  group : int;
  serial : int;
  base : int;
  size : int;
  alloc_time : int;
  mutable free_time : int option;
}

type group_key = By_site of int | By_type of string

(* Internal group record. Labels are resolved lazily through [site_name]
   because instruction tables are typically still being filled while the
   program runs; by the time anyone asks for group metadata the table is
   complete. *)
type ginfo = { g_id : int; g_site : int; g_key : group_key; mutable g_population : int }

type t = {
  grouping : grouping;
  site_name : int -> string;
  index : lifetime Ri.t;
  group_ids : (group_key, int) Hashtbl.t;
  group_recs : ginfo Vec.t;
  all : lifetime Vec.t;
  mutable translations : int;
  mutable misses : int;
  mutable unknown_frees : int;
}

let create ?(grouping = `Site) ~site_name () =
  {
    grouping;
    site_name;
    index = Ri.create ();
    group_ids = Hashtbl.create 64;
    group_recs = Vec.create ();
    all = Vec.create ();
    translations = 0;
    misses = 0;
    unknown_frees = 0;
  }

let group_key t ~site ~type_name =
  match (t.grouping, type_name) with
  | `Type, Some ty -> By_type ty
  | _ -> By_site site

let group_of t ~site ~type_name =
  let key = group_key t ~site ~type_name in
  match Hashtbl.find_opt t.group_ids key with
  | Some gid -> Vec.get t.group_recs gid
  | None ->
    let gid = Vec.length t.group_recs in
    let g = { g_id = gid; g_site = site; g_key = key; g_population = 0 } in
    Hashtbl.replace t.group_ids key gid;
    Vec.push t.group_recs g;
    g

let on_alloc t ~time ~site ~addr ~size ~type_name =
  let g = group_of t ~site ~type_name in
  let lt =
    { group = g.g_id; serial = g.g_population; base = addr; size; alloc_time = time; free_time = None }
  in
  g.g_population <- g.g_population + 1;
  Ri.insert t.index ~base:addr ~size lt;
  Vec.push t.all lt

let on_free t ~time ~addr =
  match Ri.find t.index addr with
  | Some (base, _, lt) when base = addr ->
    lt.free_time <- Some time;
    ignore (Ri.remove t.index ~base)
  | _ -> t.unknown_frees <- t.unknown_frees + 1

let translate t addr =
  match Ri.find t.index addr with
  | Some (base, _, lt) ->
    t.translations <- t.translations + 1;
    Some (lt.group, lt.serial, addr - base)
  | None ->
    t.misses <- t.misses + 1;
    None

let public_info t (g : ginfo) =
  let label =
    match g.g_key with By_type ty -> ty | By_site s -> t.site_name s
  in
  { gid = g.g_id; site = g.g_site; label; population = g.g_population }

let group t gid =
  if gid < 0 || gid >= Vec.length t.group_recs then invalid_arg "Omc.group: unknown group id";
  public_info t (Vec.get t.group_recs gid)

let groups t = List.rev (Vec.fold_left (fun acc g -> public_info t g :: acc) [] t.group_recs)

let lifetimes t = List.rev (Vec.fold_left (fun acc l -> l :: acc) [] t.all)

let live_objects t = Ri.cardinal t.index
let max_live_objects t = Ri.max_live t.index
let translations t = t.translations
let misses t = t.misses
