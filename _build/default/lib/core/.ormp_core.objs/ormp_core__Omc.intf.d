lib/core/omc.mli:
