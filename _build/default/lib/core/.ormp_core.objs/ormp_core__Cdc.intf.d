lib/core/cdc.mli: Omc Ormp_trace Tuple
