lib/core/tuple.ml: Format
