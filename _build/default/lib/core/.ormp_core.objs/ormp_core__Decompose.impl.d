lib/core/decompose.ml: Array Hashtbl List Ormp_util Tuple
