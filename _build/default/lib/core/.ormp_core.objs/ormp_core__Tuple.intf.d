lib/core/tuple.mli: Format
