lib/core/cdc.ml: Omc Ormp_trace Tuple
