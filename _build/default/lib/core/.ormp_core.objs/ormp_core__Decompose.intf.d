lib/core/decompose.mli: Tuple
