lib/core/omc.ml: Hashtbl List Ormp_interval Ormp_util
