module Vec = Ormp_util.Vec

module Horizontal = struct
  type t = {
    instrs : int Vec.t;
    groups : int Vec.t;
    objects : int Vec.t;
    offsets : int Vec.t;
  }

  let create () =
    { instrs = Vec.create (); groups = Vec.create (); objects = Vec.create (); offsets = Vec.create () }

  let push t (tu : Tuple.t) =
    Vec.push t.instrs tu.instr;
    Vec.push t.groups tu.group;
    Vec.push t.objects tu.obj;
    Vec.push t.offsets tu.offset

  let instrs t = Vec.to_array t.instrs
  let groups t = Vec.to_array t.groups
  let objects t = Vec.to_array t.objects
  let offsets t = Vec.to_array t.offsets

  let dimensions t =
    [ ("instr", instrs t); ("group", groups t); ("object", objects t); ("offset", offsets t) ]

  let length t = Vec.length t.instrs
end

module Vertical = struct
  type key = { instr : int; group : int }

  type t = {
    streams : (key, (int * int * int) Vec.t) Hashtbl.t;
    order : key Vec.t;
  }

  let create () = { streams = Hashtbl.create 64; order = Vec.create () }

  let push t (tu : Tuple.t) =
    let key = { instr = tu.instr; group = tu.group } in
    let v =
      match Hashtbl.find_opt t.streams key with
      | Some v -> v
      | None ->
        let v = Vec.create () in
        Hashtbl.replace t.streams key v;
        Vec.push t.order key;
        v
    in
    Vec.push v (tu.obj, tu.offset, tu.time)

  let keys t = List.rev (Vec.fold_left (fun acc k -> k :: acc) [] t.order)

  let stream t key =
    match Hashtbl.find_opt t.streams key with
    | Some v -> Vec.to_array v
    | None -> [||]

  let iter t f = List.iter (fun k -> f k (stream t k)) (keys t)

  let reassemble t =
    let all = Vec.create () in
    iter t (fun k entries -> Array.iter (fun e -> Vec.push all (k, e)) entries);
    let a = Vec.to_array all in
    Array.sort (fun (_, (_, _, t1)) (_, (_, _, t2)) -> compare t1 t2) a;
    a
end
