type t = {
  instr : int;
  group : int;
  obj : int;
  offset : int;
  time : int;
  is_store : bool;
}

let pp fmt t =
  Format.fprintf fmt "(%s i%d, g%d, o%d, +%d, t%d)"
    (if t.is_store then "st" else "ld")
    t.instr t.group t.obj t.offset t.time
