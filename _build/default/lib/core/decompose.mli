(** Stream decomposition (§2.2).

    {e Horizontal decomposition} splits the tuple stream into one stream
    per dimension — "a single stream of four tuples is split into four
    streams of individual tuple elements" — which is what WHOMP compresses
    (one Sequitur grammar per dimension).

    {e Vertical decomposition} groups tuples sharing a value in one
    dimension; LEAP decomposes "vertically by instruction id and then by
    group to get a number of (object, offset, time) streams". The
    time-stamp keeps sub-stream entries globally ordered.

    The collectors here materialize the decomposed streams for analysis,
    examples and tests; the profilers perform the same decomposition
    streamingly for scale. *)

module Horizontal : sig
  type t

  val create : unit -> t
  val push : t -> Tuple.t -> unit

  val instrs : t -> int array
  val groups : t -> int array
  val objects : t -> int array
  val offsets : t -> int array

  val dimensions : t -> (string * int array) list
  (** [("instr", ...); ("group", ...); ("object", ...); ("offset", ...)] —
      the four streams WHOMP feeds to Sequitur, in paper order. *)

  val length : t -> int
end

module Vertical : sig
  type key = { instr : int; group : int }

  type t

  val create : unit -> t
  val push : t -> Tuple.t -> unit

  val keys : t -> key list
  (** In first-appearance order. *)

  val stream : t -> key -> (int * int * int) array
  (** The (object, offset, time) sub-stream for a key; [] for unknown
      keys. *)

  val iter : t -> (key -> (int * int * int) array -> unit) -> unit

  val reassemble : t -> (key * (int * int * int)) array
  (** All sub-stream entries merged back into global time order — the
      paper's point that time-stamps make vertical decomposition
      reversible. *)
end
