let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let mean_a a =
  if Array.length a = 0 then 0.0
  else Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) *. (x -. m)) xs) in
    sqrt var

let sorted xs = List.sort compare xs

let median xs =
  match sorted xs with
  | [] -> 0.0
  | s ->
    let a = Array.of_list s in
    let n = Array.length a in
    if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let percentile xs p =
  match sorted xs with
  | [] -> 0.0
  | s ->
    let a = Array.of_list s in
    let n = Array.length a in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    let idx = max 0 (min (n - 1) (rank - 1)) in
    a.(idx)

let geomean = function
  | [] -> 0.0
  | xs ->
    let logs = List.map log xs in
    exp (mean logs)

let rec gcd a b =
  let a = abs a and b = abs b in
  if b = 0 then a else gcd b (a mod b)

let rec egcd a b =
  if b = 0 then
    if a >= 0 then (a, 1, 0) else (-a, -1, 0)
  else
    let g, x, y = egcd b (a mod b) in
    (g, y, x - (a / b * y))

let fdiv a b =
  if b <= 0 then invalid_arg "Stats.fdiv: b must be positive";
  if a >= 0 then a / b else -(((-a) + b - 1) / b)

let cdiv a b =
  if b <= 0 then invalid_arg "Stats.cdiv: b must be positive";
  if a >= 0 then (a + b - 1) / b else -((-a) / b)
