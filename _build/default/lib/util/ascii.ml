let pad n s =
  let len = String.length s in
  if len >= n then s else s ^ String.make (n - len) ' '

let table ~header ~rows =
  let all = header :: rows in
  let cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let widths = Array.make cols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  let sep =
    "+" ^ String.concat "+" (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths)) ^ "+"
  in
  let render_row row =
    let cells =
      List.mapi (fun i cell -> " " ^ pad widths.(i) cell ^ " ") row
      @ List.init (cols - List.length row) (fun j ->
            " " ^ pad widths.(List.length row + j) "" ^ " ")
    in
    "|" ^ String.concat "|" cells ^ "|"
  in
  String.concat "\n"
    ((sep :: render_row header :: sep :: List.map render_row rows) @ [ sep ])

let hbar ~width f =
  let f = if f < 0.0 then 0.0 else if f > 1.0 then 1.0 else f in
  let n = int_of_float (Float.round (f *. float_of_int width)) in
  String.make n '#' ^ String.make (width - n) ' '

let bar_chart ?(width = 40) ~labels ~values () =
  if Array.length labels <> Array.length values then
    invalid_arg "Ascii.bar_chart: labels/values length mismatch";
  let maxv = Array.fold_left max 0.0 values in
  let maxv = if maxv <= 0.0 then 1.0 else maxv in
  let lw = Array.fold_left (fun acc l -> max acc (String.length l)) 0 labels in
  let lines =
    Array.to_list
      (Array.mapi
         (fun i v ->
           Printf.sprintf "%s |%s| %.2f" (pad lw labels.(i)) (hbar ~width (v /. maxv)) v)
         values)
  in
  String.concat "\n" lines

let percent f = Printf.sprintf "%.1f%%" (100.0 *. f)

let ratio f = if f >= 10.0 then Printf.sprintf "%.0fx" f else Printf.sprintf "%.1fx" f

let section title =
  let line = String.make (String.length title + 8) '=' in
  Printf.sprintf "%s\n=== %s ===\n%s" line title line
