(** Small numeric helpers shared by the profilers and the report layer. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val mean_a : float array -> float

val stddev : float list -> float
(** Population standard deviation; 0 on lists shorter than 2. *)

val median : float list -> float
(** Median (average of the two middle elements for even lengths); 0 on the
    empty list. *)

val percentile : float list -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], nearest-rank method. *)

val geomean : float list -> float
(** Geometric mean of positive values; 0 on the empty list. *)

val gcd : int -> int -> int
(** Greatest common divisor on absolute values; [gcd 0 0 = 0]. *)

val egcd : int -> int -> int * int * int
(** [egcd a b = (g, x, y)] with [a*x + b*y = g = gcd a b] (g >= 0). *)

val cdiv : int -> int -> int
(** Ceiling division, correct for negative numerators. [cdiv a b] requires
    [b > 0]. *)

val fdiv : int -> int -> int
(** Floor division, correct for negative numerators. [fdiv a b] requires
    [b > 0]. *)
