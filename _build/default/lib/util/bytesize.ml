let zigzag n = if n >= 0 then n lsl 1 else ((-n) lsl 1) - 1

let varint n =
  let u = zigzag n in
  let rec go u acc = if u < 128 then acc else go (u lsr 7) (acc + 1) in
  go u 1

let of_ints xs = List.fold_left (fun acc n -> acc + varint n) 0 xs

let fixed_record = 16
