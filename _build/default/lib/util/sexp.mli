(** Minimal s-expressions, for profile persistence.

    Atoms are written bare when they contain no whitespace, parentheses or
    quotes, and as double-quoted strings (with [\\]-escapes) otherwise.
    The reader accepts both forms. No other dependencies — profiles must
    be loadable by the standalone CLI. *)

type t =
  | Atom of string
  | List of t list

val to_string : t -> string
(** Compact rendering (single line). *)

val to_channel : out_channel -> t -> unit
(** Rendering with light indentation, for humane profile files. *)

val of_string : string -> (t, string) result
(** Parse exactly one s-expression (surrounding whitespace allowed). *)

val load : string -> (t, string) result
(** Read one s-expression from a file. *)

val save : string -> t -> unit
(** Write to a file (with indentation). *)

(** Builders and view helpers used by the persistence layers. *)

val atom : string -> t
val int : int -> t
val list : t list -> t
val field : string -> t list -> t
(** [field "name" xs] is [(name xs...)]. *)

val as_int : t -> (int, string) result
val as_atom : t -> (string, string) result
val as_list : t -> (t list, string) result

val assoc : string -> t -> (t list, string) result
(** [assoc "name" (List fields)] finds the [(name ...)] field and returns
    its arguments. *)
