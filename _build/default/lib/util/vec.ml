type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let length t = t.len

let grow t v =
  let cap = Array.length t.data in
  let ncap = if cap = 0 then 16 else cap * 2 in
  let nd = Array.make ncap v in
  Array.blit t.data 0 nd 0 t.len;
  t.data <- nd

let push t v =
  if t.len = Array.length t.data then grow t v;
  t.data.(t.len) <- v;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get: index out of bounds";
  t.data.(i)

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold_left f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_array t = Array.sub t.data 0 t.len

let of_array a = { data = Array.copy a; len = Array.length a }

let clear t = t.len <- 0
