(** Deterministic pseudo-random number generation.

    A small splitmix64 generator used everywhere randomness is needed, so
    that every workload, experiment and test is reproducible bit-for-bit
    across runs and OCaml versions (the stdlib [Random] algorithm is not
    stable across releases). *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] makes a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy sharing no state with the original. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t]. Streams of
    the parent and child are independent for practical purposes. *)

val next : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. Requires
    [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)

val geometric : t -> p:float -> int
(** [geometric t ~p] samples the number of failures before the first
    success of a Bernoulli([p]) trial; mean [(1-p)/p]. Requires
    [0 < p <= 1]. *)
