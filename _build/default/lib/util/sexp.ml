type t = Atom of string | List of t list

let needs_quoting s =
  s = ""
  || String.exists
       (function
         | ' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | '\\' | ';' -> true
         | _ -> false)
       s

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' | '\\' ->
        Buffer.add_char buf '\\';
        Buffer.add_char buf c
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let atom_to_string s = if needs_quoting s then escape s else s

let rec to_buf buf = function
  | Atom s -> Buffer.add_string buf (atom_to_string s)
  | List xs ->
    Buffer.add_char buf '(';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ' ';
        to_buf buf x)
      xs;
    Buffer.add_char buf ')'

let to_string t =
  let buf = Buffer.create 256 in
  to_buf buf t;
  Buffer.contents buf

let rec write_indented oc ~depth t =
  match t with
  | Atom _ -> output_string oc (to_string t)
  | List xs when List.for_all (function Atom _ -> true | _ -> false) xs ->
    output_string oc (to_string t)
  | List xs ->
    output_char oc '(';
    List.iteri
      (fun i x ->
        if i > 0 then begin
          output_char oc '\n';
          output_string oc (String.make ((depth + 1) * 2) ' ')
        end;
        write_indented oc ~depth:(depth + 1) x)
      xs;
    output_char oc ')'

let to_channel oc t =
  write_indented oc ~depth:0 t;
  output_char oc '\n'

exception Parse_error of string

let parse_all (s : string) =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | Some ';' ->
      (* comment to end of line *)
      while peek () <> None && peek () <> Some '\n' do
        advance ()
      done;
      skip_ws ()
    | _ -> ()
  in
  let parse_quoted () =
    advance ();
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> raise (Parse_error "unterminated string")
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some c -> Buffer.add_char buf c
        | None -> raise (Parse_error "dangling escape"));
        advance ();
        go ()
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_bare () =
    let start = !pos in
    let rec go () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | ';') | None -> ()
      | Some _ ->
        advance ();
        go ()
    in
    go ();
    String.sub s start (!pos - start)
  in
  let rec parse_one () =
    skip_ws ();
    match peek () with
    | None -> raise (Parse_error "unexpected end of input")
    | Some '(' ->
      advance ();
      let items = ref [] in
      let rec go () =
        skip_ws ();
        match peek () with
        | Some ')' -> advance ()
        | None -> raise (Parse_error "unterminated list")
        | Some _ ->
          items := parse_one () :: !items;
          go ()
      in
      go ();
      List (List.rev !items)
    | Some ')' -> raise (Parse_error "unexpected )")
    | Some '"' -> Atom (parse_quoted ())
    | Some _ -> Atom (parse_bare ())
  in
  let result = parse_one () in
  skip_ws ();
  if !pos <> n then raise (Parse_error "trailing input");
  result

let of_string s =
  match parse_all s with
  | t -> Ok t
  | exception Parse_error msg -> Error msg

let load path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let len = in_channel_length ic in
    let content = really_input_string ic len in
    close_in ic;
    of_string content

let save path t =
  let oc = open_out_bin path in
  to_channel oc t;
  close_out oc

let atom s = Atom s
let int n = Atom (string_of_int n)
let list xs = List xs
let field name xs = List (Atom name :: xs)

let as_int = function
  | Atom s -> (
    match int_of_string_opt s with Some n -> Ok n | None -> Error ("not an int: " ^ s))
  | List _ -> Error "expected int, got list"

let as_atom = function Atom s -> Ok s | List _ -> Error "expected atom, got list"
let as_list = function List xs -> Ok xs | Atom s -> Error ("expected list, got atom " ^ s)

let assoc name t =
  match t with
  | Atom _ -> Error "expected list of fields"
  | List fields -> (
    let found =
      List.find_opt
        (function List (Atom n :: _) when n = name -> true | _ -> false)
        fields
    in
    match found with
    | Some (List (_ :: args)) -> Ok args
    | _ -> Error ("missing field " ^ name))
