lib/util/bytesize.ml: List
