lib/util/stats.mli:
