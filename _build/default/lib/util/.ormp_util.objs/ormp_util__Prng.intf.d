lib/util/prng.mli:
