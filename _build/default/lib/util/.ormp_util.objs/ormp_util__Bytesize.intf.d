lib/util/bytesize.mli:
