lib/util/sexp.mli:
