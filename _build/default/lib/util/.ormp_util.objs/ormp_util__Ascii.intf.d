lib/util/ascii.mli:
