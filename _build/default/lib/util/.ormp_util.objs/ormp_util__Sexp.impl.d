lib/util/sexp.ml: Buffer List String
