lib/util/ascii.ml: Array Float List Printf String
