lib/util/histogram.mli:
