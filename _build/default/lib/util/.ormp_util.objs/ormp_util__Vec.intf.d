lib/util/vec.mli:
