(** Growable arrays (the stdlib gains [Dynarray] only in 5.2).

    Used for trace recording, where events arrive one at a time and the
    final length is unknown. Amortized O(1) push. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val push : 'a t -> 'a -> unit

val get : 'a t -> int -> 'a
(** @raise Invalid_argument when out of bounds. *)

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_array : 'a t -> 'a array
val of_array : 'a array -> 'a t
val clear : 'a t -> unit
