(** Byte-size accounting for profiles.

    Profile sizes in the paper are compared in bytes. We charge every stored
    integer its LEB128 (varint) width so that small object-relative values
    cost less than large raw addresses — the same effect a real on-disk
    encoding would have. *)

val varint : int -> int
(** Bytes needed to store [n] as an unsigned LEB128 varint (negative values
    are zigzag-encoded first). At least 1. *)

val of_ints : int list -> int
(** Total varint bytes for a list of integers. *)

val fixed_record : int
(** Size charged for one raw trace record: 4-byte instruction id + 8-byte
    address + 4-byte metadata = 16 bytes. Used as the uncompressed-trace
    base for compression-ratio computations. *)
