(** Plain-text tables and bar charts for experiment output.

    Everything the benchmark harness prints (the reproduced figures and
    tables) goes through this module so the output is uniform. *)

val table : header:string list -> rows:string list list -> string
(** Render a boxed table. Column widths are taken from the longest cell. *)

val hbar : width:int -> float -> string
(** [hbar ~width f] renders a bar of [f * width] filled cells ([f] clamped
    to [\[0,1\]]). *)

val bar_chart :
  ?width:int -> labels:string array -> values:float array -> unit -> string
(** Horizontal bar chart, one row per label, bars scaled to the maximum
    value. Values are printed next to the bars. *)

val percent : float -> string
(** Format a fraction as a percentage with one decimal ("12.3%"). *)

val ratio : float -> string
(** Format a ratio like "3539x" (no decimals above 10, one below). *)

val section : string -> string
(** A visually distinct section banner. *)
