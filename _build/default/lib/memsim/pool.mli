(** Custom allocation pools.

    The paper treats custom alloc pools as single objects (§3.1, footnote):
    the profiler sees one allocation for the whole pool, while the program
    carves many small pieces out of it. Workloads with custom allocators
    (like the parser stand-in) use this module; the piece addresses it
    returns land inside one profiled object, reproducing the paper's
    within-object behaviour. *)

type t

val create : Allocator.t -> size:int -> t
(** Carve a pool of [size] bytes out of the given heap. *)

val base : t -> int
(** Address of the pool block (also the address of the profiled object). *)

val size : t -> int

val alloc : t -> int -> int
(** Bump-allocate a piece inside the pool (8-byte aligned).
    @raise Out_of_memory when the pool is exhausted. *)

val reset : t -> unit
(** Recycle the whole pool: subsequent pieces start from the base again.
    Models per-phase pool reuse (e.g. per-sentence in a parser). *)

val used : t -> int
(** Bytes handed out since the last reset. *)

val destroy : t -> unit
(** Return the pool block to the heap. The pool must not be used after. *)
