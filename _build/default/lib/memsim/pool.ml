type t = {
  heap : Allocator.t;
  base_addr : int;
  pool_size : int;
  mutable cursor : int;
}

let create heap ~size =
  if size <= 0 then invalid_arg "Pool.create: size must be positive";
  let base_addr = Allocator.alloc heap size in
  { heap; base_addr; pool_size = size; cursor = 0 }

let base t = t.base_addr
let size t = t.pool_size

let alloc t n =
  if n <= 0 then invalid_arg "Pool.alloc: size must be positive";
  let aligned = (n + 7) / 8 * 8 in
  if t.cursor + aligned > t.pool_size then raise Out_of_memory;
  let addr = t.base_addr + t.cursor in
  t.cursor <- t.cursor + aligned;
  addr

let reset t = t.cursor <- 0
let used t = t.cursor

let destroy t = Allocator.free t.heap t.base_addr
