(** Simulated linker layout of statically-allocated objects.

    The paper notes that "the insertion of probes could change the code
    segment size and thus the linker data layout of static data" (§1). This
    module places a program's static objects at concrete addresses, with a
    configurable segment base and inter-object padding so that experiments
    can reproduce the run-to-run drift of static addresses. *)

type entry = { name : string; size : int }
(** One static object (a global variable or table). *)

type placement = { entry : entry; address : int }

val assign : ?base:int -> ?align:int -> ?gap:int -> entry list -> placement list
(** Lay the entries out in order starting at [base] (default 0x0804_8000 —
    a classic data-segment origin), aligning each to [align] (default 8)
    and leaving [gap] padding bytes between objects (default 0). Different
    [base]/[gap] values model a relinked binary. *)

val lookup : placement list -> string -> placement
(** @raise Not_found if no entry has that name. *)

val segment_end : placement list -> int
(** First address past the laid-out data; [base] when empty — callers
    should place the heap above this. *)
