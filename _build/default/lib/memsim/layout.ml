type entry = { name : string; size : int }
type placement = { entry : entry; address : int }

let default_base = 0x0804_8000

let assign ?(base = default_base) ?(align = 8) ?(gap = 0) entries =
  if align <= 0 then invalid_arg "Layout.assign: bad alignment";
  let round_up n = (n + align - 1) / align * align in
  let _, rev =
    List.fold_left
      (fun (cursor, acc) entry ->
        if entry.size <= 0 then invalid_arg "Layout.assign: entry size must be positive";
        let address = round_up cursor in
        (address + entry.size + gap, { entry; address } :: acc))
      (base, []) entries
  in
  List.rev rev

let lookup placements name = List.find (fun p -> p.entry.name = name) placements

let segment_end = function
  | [] -> default_base
  | placements ->
    List.fold_left (fun acc p -> max acc (p.address + p.entry.size)) 0 placements
