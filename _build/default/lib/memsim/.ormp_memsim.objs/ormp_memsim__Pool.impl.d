lib/memsim/pool.ml: Allocator
