lib/memsim/pool.mli: Allocator
