lib/memsim/allocator.mli:
