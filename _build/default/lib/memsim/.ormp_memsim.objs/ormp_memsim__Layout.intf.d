lib/memsim/layout.mli:
