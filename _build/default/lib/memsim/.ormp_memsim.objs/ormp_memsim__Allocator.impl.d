lib/memsim/allocator.ml: Hashtbl Int Map Ormp_interval Ormp_util Printf Prng Seq
