lib/memsim/layout.ml: List
