type t = Event.t -> unit

let null = fun (_ : Event.t) -> ()

let fanout sinks = fun ev -> List.iter (fun s -> s ev) sinks

type recorder = { buf : Event.t Ormp_util.Vec.t; mutable accesses : int }

let recorder () = { buf = Ormp_util.Vec.create (); accesses = 0 }

let recorder_sink r =
 fun ev ->
  Ormp_util.Vec.push r.buf ev;
  if Event.is_access ev then r.accesses <- r.accesses + 1

let events r = Ormp_util.Vec.to_array r.buf

let replay r sink = Ormp_util.Vec.iter sink r.buf

let access_count r = r.accesses

let trace_bytes r = r.accesses * Ormp_util.Bytesize.fixed_record

type counter = {
  mutable loads : int;
  mutable stores : int;
  mutable allocs : int;
  mutable frees : int;
}

let counter () = { loads = 0; stores = 0; allocs = 0; frees = 0 }

let counter_sink c = function
  | Event.Access { is_store = false; _ } -> c.loads <- c.loads + 1
  | Event.Access { is_store = true; _ } -> c.stores <- c.stores + 1
  | Event.Alloc _ -> c.allocs <- c.allocs + 1
  | Event.Free _ -> c.frees <- c.frees + 1

let accesses c = c.loads + c.stores
