(** Event consumers.

    A profiler is a sink of probe events; the VM drives whatever sink it is
    given. Sinks compose with {!fanout}, and {!recorder} captures a full
    trace for replay — the moral equivalent of the raw trace file a
    trace-based profiler would write. *)

type t = Event.t -> unit

val null : t
(** Discards everything (bare, un-instrumented run). *)

val fanout : t list -> t
(** Deliver each event to every sink, in order. *)

type recorder

val recorder : unit -> recorder
val recorder_sink : recorder -> t

val events : recorder -> Event.t array
(** Everything recorded so far, in arrival order. *)

val replay : recorder -> t -> unit
(** Re-deliver the recorded events to another sink. *)

val access_count : recorder -> int
(** Number of [Access] events recorded. *)

val trace_bytes : recorder -> int
(** Size of the recorded access trace at {!Ormp_util.Bytesize.fixed_record}
    bytes per access — the uncompressed-trace baseline for compression
    ratios. *)

type counter = { mutable loads : int; mutable stores : int; mutable allocs : int; mutable frees : int }

val counter : unit -> counter
val counter_sink : counter -> t
val accesses : counter -> int
