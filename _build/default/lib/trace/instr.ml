type kind = Load | Store | Alloc_site | Free_site

let kind_name = function
  | Load -> "load"
  | Store -> "store"
  | Alloc_site -> "alloc"
  | Free_site -> "free"

type info = { id : int; name : string; kind : kind }

type table = { entries : info Ormp_util.Vec.t }

let create_table () = { entries = Ormp_util.Vec.create () }

let register t ~name kind =
  let id = Ormp_util.Vec.length t.entries in
  Ormp_util.Vec.push t.entries { id; name; kind };
  id

let info t id =
  if id < 0 || id >= Ormp_util.Vec.length t.entries then
    invalid_arg (Printf.sprintf "Instr.info: unregistered id %d" id);
  Ormp_util.Vec.get t.entries id

let count t = Ormp_util.Vec.length t.entries

let all t = List.rev (Ormp_util.Vec.fold_left (fun acc i -> i :: acc) [] t.entries)

let mem_ops t = List.filter (fun i -> i.kind = Load || i.kind = Store) (all t)
