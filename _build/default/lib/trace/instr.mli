(** Static program points.

    Probes are attached to static instructions: every load and store gets an
    instruction id, and every allocation point gets a site id (the paper
    "groups allocated dynamic objects by static instruction", §3.1). A
    workload registers its program points once, up front, so the ids are
    stable across runs regardless of allocator or layout configuration. *)

type kind =
  | Load
  | Store
  | Alloc_site
  | Free_site

val kind_name : kind -> string

type info = { id : int; name : string; kind : kind }

type table

val create_table : unit -> table

val register : table -> name:string -> kind -> int
(** Assign the next id to a fresh program point. Names are for humans and
    need not be unique; ids are dense from 0. *)

val info : table -> int -> info
(** @raise Invalid_argument for an unregistered id. *)

val count : table -> int

val all : table -> info list
(** In id order. *)

val mem_ops : table -> info list
(** Only the loads and stores, in id order. *)
