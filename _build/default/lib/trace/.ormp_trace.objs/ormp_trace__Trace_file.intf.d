lib/trace/trace_file.mli: Event Sink
