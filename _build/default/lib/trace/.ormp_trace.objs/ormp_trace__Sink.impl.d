lib/trace/sink.ml: Event List Ormp_util
