lib/trace/instr.ml: List Ormp_util Printf
