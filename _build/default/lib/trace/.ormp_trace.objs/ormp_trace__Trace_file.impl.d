lib/trace/trace_file.ml: Array Event Ormp_util Printf String
