lib/trace/instr.mli:
