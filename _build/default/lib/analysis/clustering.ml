type t = {
  group : int;
  affinities : ((int * int) * int) list;
  order : int list;
}

let pair_key a b = if a <= b then (a, b) else (b, a)

let analyze ?(window = 8) (c : Collect.t) ~group =
  let aff = Hashtbl.create 256 in
  let bump k = Hashtbl.replace aff k (1 + Option.value ~default:0 (Hashtbl.find_opt aff k)) in
  let tuples = c.Collect.tuples in
  let n = Array.length tuples in
  for i = 0 to n - 1 do
    let a = tuples.(i) in
    if a.Ormp_core.Tuple.group = group then
      for j = i + 1 to min (n - 1) (i + window) do
        let b = tuples.(j) in
        if b.Ormp_core.Tuple.group = group && b.Ormp_core.Tuple.obj <> a.Ormp_core.Tuple.obj
        then bump (pair_key a.Ormp_core.Tuple.obj b.Ormp_core.Tuple.obj)
      done
  done;
  let affinities =
    Hashtbl.fold (fun k w acc -> (k, w) :: acc) aff []
    |> List.sort (fun (_, w1) (_, w2) -> compare w2 w1)
  in
  (* Greedy chain layout: walk pairs by weight; each pair joins, extends or
     merges clusters. Final order concatenates clusters by total weight,
     then any untouched objects in serial order. *)
  let population =
    List.fold_left
      (fun acc (l : Ormp_core.Omc.lifetime) -> if l.group = group then max acc (l.serial + 1) else acc)
      0 c.Collect.lifetimes
  in
  let cluster_of = Hashtbl.create 64 in
  let clusters : (int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  let next_cluster = ref 0 in
  List.iter
    (fun ((a, b), _) ->
      match (Hashtbl.find_opt cluster_of a, Hashtbl.find_opt cluster_of b) with
      | None, None ->
        let id = !next_cluster in
        incr next_cluster;
        Hashtbl.replace clusters id (ref [ b; a ]);
        Hashtbl.replace cluster_of a id;
        Hashtbl.replace cluster_of b id
      | Some ca, None ->
        (Hashtbl.find clusters ca) := b :: !(Hashtbl.find clusters ca);
        Hashtbl.replace cluster_of b ca
      | None, Some cb ->
        (Hashtbl.find clusters cb) := a :: !(Hashtbl.find clusters cb);
        Hashtbl.replace cluster_of a cb
      | Some ca, Some cb when ca <> cb ->
        let la = Hashtbl.find clusters ca and lb = Hashtbl.find clusters cb in
        la := !lb @ !la;
        List.iter (fun x -> Hashtbl.replace cluster_of x ca) !lb;
        Hashtbl.remove clusters cb
      | Some _, Some _ -> ())
    affinities;
  let clustered =
    Hashtbl.fold (fun _ l acc -> List.rev !l :: acc) clusters []
    |> List.sort (fun a b -> compare (List.length b) (List.length a))
    |> List.concat
  in
  let seen = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace seen s ()) clustered;
  let rest = List.filter (fun s -> not (Hashtbl.mem seen s)) (List.init population Fun.id) in
  { group; affinities; order = clustered @ rest }

type layout = (int * int, int) Hashtbl.t

let align16 n = (n + 15) / 16 * 16

let base_address = 0x1000_0000

let sequential_layout (c : Collect.t) =
  let layout = Hashtbl.create 256 in
  let cursor = ref base_address in
  List.iter
    (fun (l : Ormp_core.Omc.lifetime) ->
      Hashtbl.replace layout (l.group, l.serial) !cursor;
      cursor := align16 (!cursor + l.size))
    c.Collect.lifetimes;
  layout

let clustered_layout (c : Collect.t) proposals =
  let layout = Hashtbl.create 256 in
  let cursor = ref base_address in
  let place group serial =
    if not (Hashtbl.mem layout (group, serial)) then begin
      match Collect.size_of c ~group ~obj:serial with
      | size ->
        Hashtbl.replace layout (group, serial) !cursor;
        cursor := align16 (!cursor + size)
      | exception Not_found -> ()
    end
  in
  List.iter (fun t -> List.iter (place t.group) t.order) proposals;
  List.iter
    (fun (l : Ormp_core.Omc.lifetime) -> place l.group l.serial)
    c.Collect.lifetimes;
  layout

let replay_miss_rate ?(cache = Ormp_cachesim.Cache.l1d) (c : Collect.t) layout =
  let sim = Ormp_cachesim.Cache.create cache in
  Array.iter
    (fun (tu : Ormp_core.Tuple.t) ->
      match Hashtbl.find_opt layout (tu.group, tu.obj) with
      | Some base -> ignore (Ormp_cachesim.Cache.access sim ~addr:(base + tu.offset) ~size:8)
      | None -> ())
    c.Collect.tuples;
  Ormp_cachesim.Cache.miss_rate sim
