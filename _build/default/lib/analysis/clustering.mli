(** Object clustering (the paper's reference [4], Rubin-Bodik-Chilimbi).

    The object dimension of the object-relative profile says {e which}
    objects are accessed together; a cache-conscious allocator can then
    place temporally-affine objects on the same lines. This module builds
    the object-affinity graph from a collected run, proposes a greedy
    clustered layout, and — because the whole point is cache behaviour —
    replays the access stream through the cache simulator under both the
    original and the clustered layout to score the proposal.

    The replay relocates objects but preserves the access sequence exactly;
    this is sound because the object-relative stream is layout-invariant
    (the paper's central property, verified by the test suite). *)

type t = {
  group : int;
  affinities : ((int * int) * int) list;
      (** unordered object-serial pairs of the group, adjacency-weighted,
          heaviest first *)
  order : int list;  (** proposed placement order (object serials) *)
}

val analyze : ?window:int -> Collect.t -> group:int -> t
(** Affinity counts pairs of distinct objects accessed within [window]
    (default 8) consecutive collected accesses of each other. *)

type layout = (int * int, int) Hashtbl.t
(** (group, serial) -> base address. *)

val sequential_layout : Collect.t -> layout
(** Objects packed in allocation order (what a bump allocator did). *)

val clustered_layout : Collect.t -> t list -> layout
(** Objects of clustered groups packed in the proposed order; everything
    else in allocation order after them. *)

val replay_miss_rate : ?cache:Ormp_cachesim.Cache.config -> Collect.t -> layout -> float
(** Miss rate of the collected access stream under a layout
    (default cache: {!Ormp_cachesim.Cache.l1d}). *)
