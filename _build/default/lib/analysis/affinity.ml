type t = {
  group : int;
  weights : ((int * int) * int) list;
  field_heat : (int * int) list;
}

let pair_key a b = if a <= b then (a, b) else (b, a)

let analyze (c : Collect.t) ~group =
  let weights = Hashtbl.create 32 in
  let heat = Hashtbl.create 32 in
  let bump tbl k n = Hashtbl.replace tbl k (n + Option.value ~default:0 (Hashtbl.find_opt tbl k)) in
  let n = Array.length c.Collect.tuples in
  for i = 0 to n - 1 do
    let tu = c.Collect.tuples.(i) in
    if tu.Ormp_core.Tuple.group = group then begin
      bump heat tu.Ormp_core.Tuple.offset 0;
      if i + 1 < n then begin
        let next = c.Collect.tuples.(i + 1) in
        if
          next.Ormp_core.Tuple.group = group
          && next.Ormp_core.Tuple.obj = tu.Ormp_core.Tuple.obj
          && next.Ormp_core.Tuple.offset <> tu.Ormp_core.Tuple.offset
        then begin
          let k = pair_key tu.Ormp_core.Tuple.offset next.Ormp_core.Tuple.offset in
          bump weights k 1;
          bump heat tu.Ormp_core.Tuple.offset 1;
          bump heat next.Ormp_core.Tuple.offset 1
        end
      end
    end
  done;
  {
    group;
    weights =
      Hashtbl.fold (fun k w acc -> (k, w) :: acc) weights []
      |> List.sort (fun (_, w1) (_, w2) -> compare w2 w1);
    field_heat =
      Hashtbl.fold (fun f h acc -> (f, h) :: acc) heat []
      |> List.sort (fun (_, h1) (_, h2) -> compare h2 h1);
  }

let propose_order t =
  match t.weights with
  | [] -> List.map fst t.field_heat
  | ((a, b), _) :: _ ->
    let placed = ref [ b; a ] (* reversed: a first *) in
    let affinity_to_placed f =
      List.fold_left
        (fun acc p ->
          acc + Option.value ~default:0 (List.assoc_opt (pair_key f p) t.weights))
        0 !placed
    in
    let remaining = ref (List.filter (fun (f, _) -> f <> a && f <> b) t.field_heat) in
    while !remaining <> [] do
      let best, _ =
        List.fold_left
          (fun (bf, ba) (f, _) ->
            let af = affinity_to_placed f in
            if af > ba then (Some f, af) else (bf, ba))
          (None, -1) !remaining
      in
      let f = Option.get best in
      placed := f :: !placed;
      remaining := List.filter (fun (g, _) -> g <> f) !remaining
    done;
    List.rev !placed

let remap ~old_order ~sizes =
  let all_fields = List.map fst sizes in
  let missing = List.filter (fun f -> not (List.mem f old_order)) all_fields in
  let order = old_order @ List.sort compare missing in
  let align8 n = (n + 7) / 8 * 8 in
  let _, mapping =
    List.fold_left
      (fun (cursor, acc) f ->
        match List.assoc_opt f sizes with
        | None -> (cursor, acc) (* observed offset with no declared field *)
        | Some size -> (align8 (cursor + size), (f, cursor) :: acc))
      (0, []) order
  in
  List.rev mapping
