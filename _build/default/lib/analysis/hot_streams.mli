(** Hot data streams from Sequitur grammars.

    §3.2: the OMSG "contain[s] information about repeating memory access
    patterns, which is useful for a class of correlation-based memory
    optimizations including clustering, custom heap allocation, and hot
    data stream prefetching". Following Chilimbi & Hirzel (the paper's
    reference [11]), a {e hot data stream} is a frequently repeated
    subsequence; in a Sequitur grammar those are exactly the rules, whose
    heat is (times the rule's expansion occurs in the input) x (expansion
    length). *)

type hot = {
  rule : int;  (** grammar rule id *)
  symbols : int array;  (** the rule's full terminal expansion *)
  uses : int;  (** occurrences of this subsequence in the original input *)
  heat : int;  (** uses * expansion length *)
}

val of_grammar : ?top:int -> ?min_length:int -> Ormp_sequitur.Sequitur.t -> hot list
(** The hottest rules, heat-descending. [top] defaults to 10; rules whose
    expansion is shorter than [min_length] (default 2) are skipped. The
    start rule (the whole input, trivially "hot") is excluded. *)

val pp : Format.formatter -> hot -> unit
