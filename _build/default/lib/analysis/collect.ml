type t = {
  tuples : Ormp_core.Tuple.t array;
  lifetimes : Ormp_core.Omc.lifetime list;
  groups : Ormp_core.Omc.group_info list;
  table : Ormp_trace.Instr.table;
  wild : int;
}

let run ?config ?grouping program =
  let buf = Ormp_util.Vec.create () in
  let cdc =
    Ormp_core.Cdc.create ?grouping
      ~site_name:(Printf.sprintf "site%d")
      ~on_tuple:(Ormp_util.Vec.push buf)
      ()
  in
  let result = Ormp_vm.Runner.run ?config program (Ormp_core.Cdc.sink cdc) in
  let omc = Ormp_core.Cdc.omc cdc in
  {
    tuples = Ormp_util.Vec.to_array buf;
    lifetimes = Ormp_core.Omc.lifetimes omc;
    groups = Ormp_core.Omc.groups omc;
    table = result.Ormp_vm.Runner.table;
    wild = Ormp_core.Cdc.wild cdc;
  }

let size_of t ~group ~obj =
  match
    List.find_opt
      (fun (l : Ormp_core.Omc.lifetime) -> l.group = group && l.serial = obj)
      t.lifetimes
  with
  | Some l -> l.size
  | None -> raise Not_found

let instr_name t i = (Ormp_trace.Instr.info t.table i).Ormp_trace.Instr.name
