(** Materialize one instrumented run for the offline analyses.

    The profilers proper compress streamingly; the optimization analyses in
    this library (clustering, affinity, phases) want the whole
    object-relative stream plus the OMC's auxiliary object information, so
    this helper runs a program once and keeps everything. *)

type t = {
  tuples : Ormp_core.Tuple.t array;  (** the collected stream, in time order *)
  lifetimes : Ormp_core.Omc.lifetime list;  (** every object, allocation order *)
  groups : Ormp_core.Omc.group_info list;
  table : Ormp_trace.Instr.table;
  wild : int;
}

val run :
  ?config:Ormp_vm.Config.t ->
  ?grouping:Ormp_core.Omc.grouping ->
  Ormp_vm.Program.t ->
  t

val size_of : t -> group:int -> obj:int -> int
(** Allocated size of an object. @raise Not_found. *)

val instr_name : t -> int -> string
