type phase = {
  start_time : int;
  stop_time : int;
  signature : (int * float) list;
}

let signature_of tuples lo hi =
  let counts = Hashtbl.create 16 in
  for i = lo to hi - 1 do
    let g = tuples.(i).Ormp_core.Tuple.group in
    Hashtbl.replace counts g (1 + Option.value ~default:0 (Hashtbl.find_opt counts g))
  done;
  let total = float_of_int (hi - lo) in
  Hashtbl.fold (fun g c acc -> (g, float_of_int c /. total) :: acc) counts []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let manhattan s1 s2 =
  let groups = List.sort_uniq compare (List.map fst s1 @ List.map fst s2) in
  List.fold_left
    (fun acc g ->
      let v l = Option.value ~default:0.0 (List.assoc_opt g l) in
      acc +. abs_float (v s1 -. v s2))
    0.0 groups

let detect ?(window = 1024) ?(threshold = 0.5) tuples =
  let n = Array.length tuples in
  if n = 0 then []
  else begin
    let n_windows = (n + window - 1) / window in
    let sig_of w = signature_of tuples (w * window) (min n ((w + 1) * window)) in
    let phases = ref [] in
    let phase_start = ref 0 in
    let phase_sig = ref (sig_of 0) in
    let close stop =
      phases :=
        {
          start_time = tuples.(!phase_start * window).Ormp_core.Tuple.time;
          stop_time =
            (let last = min n (stop * window) - 1 in
             tuples.(last).Ormp_core.Tuple.time + 1);
          signature = signature_of tuples (!phase_start * window) (min n (stop * window));
        }
        :: !phases
    in
    for w = 1 to n_windows - 1 do
      let s = sig_of w in
      if manhattan s !phase_sig > threshold then begin
        close w;
        phase_start := w
      end;
      (* Track the most recent window so gradual drift within a phase does
         not mask a sharp transition. *)
      phase_sig := s
    done;
    close n_windows;
    List.rev !phases
  end

let dominant_group p =
  match p.signature with
  | (g, _) :: _ -> g
  | [] -> invalid_arg "Phase.dominant_group: empty signature"

let pp fmt p =
  Format.fprintf fmt "[%d, %d) %s" p.start_time p.stop_time
    (String.concat " "
       (List.map (fun (g, f) -> Printf.sprintf "g%d:%.0f%%" g (100.0 *. f)) p.signature))
