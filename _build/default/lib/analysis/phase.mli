(** Phase detection over the object-relative stream (the paper's §6 future
    work: "make use of recent results on phase detection and prediction to
    profile references in a phase cognizant manner", citing Sherwood's
    phase tracking).

    A window's {e signature} is the distribution of its accesses over
    groups (which data structure the program is touching — exactly the
    information object-relativity exposes and raw addresses do not). A new
    phase starts where consecutive window signatures differ by more than a
    threshold in Manhattan distance. *)

type phase = {
  start_time : int;  (** time-stamp of the phase's first access *)
  stop_time : int;  (** time-stamp just past its last access *)
  signature : (int * float) list;  (** (group, access share), heaviest first *)
}

val detect :
  ?window:int -> ?threshold:float -> Ormp_core.Tuple.t array -> phase list
(** [window] is the signature granularity in accesses (default 1024);
    [threshold] the Manhattan distance (in [\[0, 2\]]) above which a
    boundary is declared (default 0.5). The phases partition
    [\[0, length)]; an empty stream yields no phases. *)

val dominant_group : phase -> int
(** The group receiving the largest share. @raise Invalid_argument on an
    empty signature. *)

val pp : Format.formatter -> phase -> unit
