module S = Ormp_sequitur.Sequitur

type hot = { rule : int; symbols : int array; uses : int; heat : int }

(* Occurrences of each rule's expansion in the original input: the start
   rule occurs once; every other rule occurs as often as the rules that
   mention it, summed with multiplicity. Rule ids are acyclic (a rule can
   only reference rules that existed when it was formed, and expansion is
   finite), so a topological pass over the usage graph suffices. *)
let total_uses rules =
  let uses = Hashtbl.create 64 in
  Hashtbl.replace uses 0 1;
  (* Process parents before children: Sequitur rule bodies only mention
     live rules; iterate until fixpoint (the graph is a DAG, and each pass
     settles at least one frontier layer — a worklist keeps it linear). *)
  let parents_of = Hashtbl.create 64 in
  List.iter
    (fun (id, rhs) ->
      List.iter
        (function
          | `N child ->
            let entry =
              match Hashtbl.find_opt parents_of child with
              | Some l -> l
              | None ->
                let l = ref [] in
                Hashtbl.replace parents_of child l;
                l
            in
            entry := (id, 1) :: !entry
          | `T _ -> ())
        rhs)
    rules;
  (* Kahn-style: a rule's count is final once all its parents' are. *)
  let pending = Hashtbl.create 64 in
  List.iter
    (fun (id, _) ->
      if id <> 0 then
        let n =
          match Hashtbl.find_opt parents_of id with Some l -> List.length !l | None -> 0
        in
        Hashtbl.replace pending id n)
    rules;
  let ready = Queue.create () in
  Queue.push 0 ready;
  let children_of = Hashtbl.create 64 in
  List.iter
    (fun (id, rhs) ->
      Hashtbl.replace children_of id
        (List.filter_map (function `N c -> Some c | `T _ -> None) rhs))
    rules;
  while not (Queue.is_empty ready) do
    let id = Queue.pop ready in
    let u = Hashtbl.find uses id in
    List.iter
      (fun child ->
        Hashtbl.replace uses child (u + Option.value ~default:0 (Hashtbl.find_opt uses child));
        let left = Hashtbl.find pending child - 1 in
        Hashtbl.replace pending child left;
        if left = 0 then Queue.push child ready)
      (Option.value ~default:[] (Hashtbl.find_opt children_of id))
  done;
  uses

let expansions rules =
  let by_id = Hashtbl.create 64 in
  List.iter (fun (id, rhs) -> Hashtbl.replace by_id id rhs) rules;
  let memo = Hashtbl.create 64 in
  let rec expand id =
    match Hashtbl.find_opt memo id with
    | Some e -> e
    | None ->
      let e =
        List.concat_map
          (function `T v -> [ v ] | `N child -> Array.to_list (expand child))
          (Hashtbl.find by_id id)
        |> Array.of_list
      in
      Hashtbl.replace memo id e;
      e
  in
  List.iter (fun (id, _) -> ignore (expand id)) rules;
  memo

let of_grammar ?(top = 10) ?(min_length = 2) g =
  let rules = S.rules g in
  let uses = total_uses rules in
  let exps = expansions rules in
  List.filter_map
    (fun (id, _) ->
      if id = 0 then None
      else
        let symbols = Hashtbl.find exps id in
        if Array.length symbols < min_length then None
        else
          let u = Option.value ~default:0 (Hashtbl.find_opt uses id) in
          Some { rule = id; symbols; uses = u; heat = u * Array.length symbols })
    rules
  |> List.sort (fun a b -> compare b.heat a.heat)
  |> List.filteri (fun i _ -> i < top)

let pp fmt h =
  Format.fprintf fmt "R%d x%d (heat %d): %s" h.rule h.uses h.heat
    (String.concat " " (List.map string_of_int (Array.to_list h.symbols)))
