lib/analysis/hot_streams.mli: Format Ormp_sequitur
