lib/analysis/collect.mli: Ormp_core Ormp_trace Ormp_vm
