lib/analysis/affinity.ml: Array Collect Hashtbl List Option Ormp_core
