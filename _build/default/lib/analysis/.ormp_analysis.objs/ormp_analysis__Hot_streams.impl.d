lib/analysis/hot_streams.ml: Array Format Hashtbl List Option Ormp_sequitur Queue String
