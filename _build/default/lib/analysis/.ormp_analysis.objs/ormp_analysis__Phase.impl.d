lib/analysis/phase.ml: Array Format Hashtbl List Option Ormp_core Printf String
