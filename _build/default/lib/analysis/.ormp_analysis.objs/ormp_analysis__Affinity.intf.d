lib/analysis/affinity.mli: Collect
