lib/analysis/collect.ml: List Ormp_core Ormp_trace Ormp_util Ormp_vm Printf
