lib/analysis/clustering.ml: Array Collect Fun Hashtbl List Option Ormp_cachesim Ormp_core
