lib/analysis/phase.mli: Format Ormp_core
