lib/analysis/clustering.mli: Collect Hashtbl Ormp_cachesim
