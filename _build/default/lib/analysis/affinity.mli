(** Field affinity and reordering (§3.2's field-reordering consumer).

    "A frequently repeated offset sequence, say (0, 36)*, along with the
    object lifetime information, may reveal field-reordering opportunity
    to the compiler to take advantage of spatial locality."

    Affinity between two fields of a group is the number of times they are
    accessed back-to-back {e within the same object}. The proposed order
    packs fields greedily by affinity so hot pairs share a cache line. *)

type t = {
  group : int;
  weights : ((int * int) * int) list;
      (** unordered field-offset pairs with their adjacency counts,
          heaviest first *)
  field_heat : (int * int) list;  (** per-field total adjacency, heaviest first *)
}

val analyze : Collect.t -> group:int -> t
(** Affinity over all time-adjacent access pairs that touch the same
    object of [group]. *)

val propose_order : t -> int list
(** Field offsets in suggested layout order: seeded with the heaviest
    pair, then greedily appending the field with the strongest affinity to
    the already-placed ones. Fields never observed are omitted. *)

val remap : old_order:int list -> sizes:(int * int) list -> (int * int) list
(** [(old_offset, new_offset)] when the fields (with [(offset, size)] in
    [sizes]) are laid out in [old_order], packed from 0 with 8-byte
    alignment. Fields absent from [old_order] are appended in offset
    order. *)
