(** The workload suite.

    The seven SPEC2000 stand-ins the paper evaluates (its Table 1 rows),
    each at two sizes: [default_scale] for tests and examples, and
    [bench_scale] — the "training input" — for the benchmark harness. *)

type entry = {
  name : string;  (** e.g. "164.gzip-like" *)
  spec_ref : string;  (** the SPEC benchmark it stands in for *)
  make : scale:int -> Ormp_vm.Program.t;
  default_scale : int;
  bench_scale : int;
}

val spec : entry list
(** The seven stand-ins, in the paper's Table 1 order. *)

val find : string -> entry
(** Lookup by [name] or by [spec_ref]. @raise Not_found. *)

val program : ?bench:bool -> entry -> Ormp_vm.Program.t
(** Instantiate at [default_scale], or [bench_scale] with [~bench:true]. *)
