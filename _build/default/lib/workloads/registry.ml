type entry = {
  name : string;
  spec_ref : string;
  make : scale:int -> Ormp_vm.Program.t;
  default_scale : int;
  bench_scale : int;
}

let spec =
  [
    {
      name = "164.gzip-like";
      spec_ref = "164.gzip";
      make = (fun ~scale -> Gzip_like.program ~scale ());
      default_scale = 2000;
      bench_scale = 12000;
    };
    {
      name = "175.vpr-like";
      spec_ref = "175.vpr";
      make = (fun ~scale -> Vpr_like.program ~scale ());
      default_scale = 800;
      bench_scale = 6000;
    };
    {
      name = "181.mcf-like";
      spec_ref = "181.mcf";
      make = (fun ~scale -> Mcf_like.program ~scale ());
      default_scale = 8;
      bench_scale = 40;
    };
    {
      name = "186.crafty-like";
      spec_ref = "186.crafty";
      make = (fun ~scale -> Crafty_like.program ~scale ());
      default_scale = 600;
      bench_scale = 4000;
    };
    {
      name = "197.parser-like";
      spec_ref = "197.parser";
      make = (fun ~scale -> Parser_like.program ~scale ());
      default_scale = 60;
      bench_scale = 500;
    };
    {
      name = "256.bzip2-like";
      spec_ref = "256.bzip2";
      make = (fun ~scale -> Bzip_like.program ~scale ());
      default_scale = 3000;
      bench_scale = 20000;
    };
    {
      name = "300.twolf-like";
      spec_ref = "300.twolf";
      make = (fun ~scale -> Twolf_like.program ~scale ());
      default_scale = 500;
      bench_scale = 3500;
    };
  ]

let find key =
  match List.find_opt (fun e -> e.name = key || e.spec_ref = key) spec with
  | Some e -> e
  | None -> raise Not_found

let program ?(bench = false) e =
  e.make ~scale:(if bench then e.bench_scale else e.default_scale)
