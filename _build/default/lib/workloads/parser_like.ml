(* 197.parser stand-in: sentence parsing with a custom allocation pool.

   Memory character: per-sentence linkage structures are carved out of a
   custom pool (which the profiler sees as a single object, per the §3.1
   footnote), producing per-sentence offset ramps that restart at every
   pool reset. Accesses are largely linear (parser captures 76.3% of
   accesses in Table 1) but the per-instruction streams accumulate one
   descriptor per sentence, so the LMAD budget runs out and almost no
   instruction is *fully* captured (8.2%). *)

open Ormp_vm
open Ormp_trace

let piece_bytes = 48

(* linkage-piece fields *)
let f_word = 0
let f_left = 8
let f_right = 16
let f_cost = 24

let program ?(scale = 80) ?(expose_pieces = false) () =
  Program.make ~name:"197.parser-like"
    ~description:"link parser: pool-carved linkages, per-sentence ramps"
    ~statics:[ { Ormp_memsim.Layout.name = "dict_heads"; size = 1024 * 8 } ]
    (fun e ->
      let site_pool = Engine.instr e ~name:"parser.alloc_pool" Instr.Alloc_site in
      let site_pool_free = Engine.instr e ~name:"parser.free_pool" Instr.Free_site in
      let site_dict = Engine.instr e ~name:"parser.alloc_dict" Instr.Alloc_site in
      let ld_dict_head = Engine.instr e ~name:"parser.ld_dict_head" Instr.Load in
      let ld_dict_entry = Engine.instr e ~name:"parser.ld_dict_entry" Instr.Load in
      let st_word = Engine.instr e ~name:"parser.st_piece_word" Instr.Store in
      let st_left = Engine.instr e ~name:"parser.st_piece_left" Instr.Store in
      let st_right = Engine.instr e ~name:"parser.st_piece_right" Instr.Store in
      let ld_left = Engine.instr e ~name:"parser.ld_piece_left" Instr.Load in
      let ld_right = Engine.instr e ~name:"parser.ld_piece_right" Instr.Load in
      let ld_cost = Engine.instr e ~name:"parser.ld_piece_cost" Instr.Load in
      let st_cost = Engine.instr e ~name:"parser.st_piece_cost" Instr.Store in
      let rng = Engine.rng e in
      let dict_words = 2048 in
      let dict = Engine.alloc e ~site:site_dict ~type_name:"dictionary" (dict_words * 16) in
      let heads = Engine.static e "dict_heads" in
      let pieces_site = Engine.instr e ~name:"parser.alloc_piece" Instr.Alloc_site in
      let pool =
        Engine.pool_create e ~site:site_pool ~type_name:"linkage_pool" ~expose_pieces
          ~pieces_site (64 * 1024)
      in
      for _sentence = 1 to scale do
        Engine.pool_reset e ~pool;
        (* Sentence lengths are heavily peaked (as in real text): runs of
           common-length sentences let the per-sentence offset ramps nest
           into few descriptors. *)
        let len =
          if Ormp_util.Prng.chance rng 0.93 then 12 else 5 + Ormp_util.Prng.int rng 20
        in
        let pieces =
          Array.init len (fun _ ->
              let p = Engine.pool_piece e ~pool piece_bytes in
              (* Dictionary lookup for the word. *)
              let h = Ormp_util.Prng.int rng 1024 in
              Engine.load e ~instr:ld_dict_head heads (h * 8);
              Engine.load e ~instr:ld_dict_entry dict (Ormp_util.Prng.int rng dict_words * 16);
              Engine.store e ~instr:st_word p f_word;
              p)
        in
        (* Link adjacent pieces left/right. *)
        for i = 0 to len - 1 do
          Engine.store e ~instr:st_left pieces.(i) f_left;
          Engine.store e ~instr:st_right pieces.(i) f_right
        done;
        (* Parsing sweeps: cost evaluation over piece pairs. *)
        for _pass = 1 to 2 do
          for i = 0 to len - 2 do
            Engine.load e ~instr:ld_left pieces.(i) f_left;
            Engine.load e ~instr:ld_right pieces.(i + 1) f_right;
            Engine.load e ~instr:ld_cost pieces.(i) f_cost;
            Engine.store e ~instr:st_cost pieces.(i) f_cost
          done
        done
      done;
      Engine.pool_destroy e ~site:site_pool_free ~pool)
