(* 175.vpr stand-in: FPGA placement by simulated annealing.

   Memory character, mirroring the real vpr: per-cell block structures
   (small objects with fixed field offsets), one large occupancy grid
   indexed by move-dependent positions (scattered offsets), and per-net
   pin lists walked as short linear bursts. Annealing concentrates moves
   on congested regions, so the same cells recur. The mix puts vpr in the
   middle of the capture range (34.7% in Table 1). *)

open Ormp_vm
open Ormp_trace

let cell_bytes = 24

(* cell fields *)
let f_x = 0
let f_y = 8
let f_net = 16

let program ?(scale = 1500) () =
  Program.make ~name:"175.vpr-like"
    ~description:"placement annealing: cell structs + occupancy scatter + pin bursts" (fun e ->
      let site_cell = Engine.instr e ~name:"vpr.alloc_cell" Instr.Alloc_site in
      let site_grid = Engine.instr e ~name:"vpr.alloc_grid" Instr.Alloc_site in
      let site_net = Engine.instr e ~name:"vpr.alloc_net" Instr.Alloc_site in
      let ld_cx = Engine.instr e ~name:"vpr.ld_cell_x" Instr.Load in
      let ld_cy = Engine.instr e ~name:"vpr.ld_cell_y" Instr.Load in
      let ld_cnet = Engine.instr e ~name:"vpr.ld_cell_net" Instr.Load in
      let ld_occ = Engine.instr e ~name:"vpr.ld_occupancy" Instr.Load in
      let ld_pin = Engine.instr e ~name:"vpr.ld_net_pin" Instr.Load in
      let ld_pincell = Engine.instr e ~name:"vpr.ld_pin_cell_x" Instr.Load in
      let st_swap = Engine.instr e ~name:"vpr.st_cell_xy" Instr.Store in
      let st_occ = Engine.instr e ~name:"vpr.st_occupancy" Instr.Store in
      let rng = Engine.rng e in
      let n_cells = 400 in
      let grid_w = 20 in
      let n_slots = 480 in
      let n_nets = 120 in
      let pins_per_net = 6 in
      let cells =
        Array.init n_cells (fun _ -> Engine.alloc e ~site:site_cell ~type_name:"cell" cell_bytes)
      in
      let occupancy = Engine.alloc e ~site:site_grid ~type_name:"occupancy" (n_slots * 8) in
      let nets =
        Array.init n_nets (fun _ ->
            Engine.alloc e ~site:site_net ~type_name:"net" (8 + (pins_per_net * 8)))
      in
      (* Shadow: each cell's position, its net, and each net's pins. *)
      let position = Array.init n_cells (fun i -> i) in
      let cell_net = Array.init n_cells (fun _ -> Ormp_util.Prng.int rng n_nets) in
      let net_pins =
        Array.init n_nets (fun _ ->
            Array.init pins_per_net (fun _ -> Ormp_util.Prng.int rng n_cells))
      in
      let cost_of_cell c =
        Engine.load e ~instr:ld_cx cells.(c) f_x;
        Engine.load e ~instr:ld_cy cells.(c) f_y;
        Engine.load e ~instr:ld_cnet cells.(c) f_net;
        (* Congestion term: the occupancy of the cell's slot and its four
           neighbours — scattered bases, short local bursts. *)
        let pos = position.(c) in
        List.iter
          (fun d ->
            let slot = max 0 (min (n_slots - 1) (pos + d)) in
            Engine.load e ~instr:ld_occ occupancy (slot * 8))
          [ 0; 1; -1; grid_w; -grid_w ];
        (* Wirelength term: walk the net's pin list. *)
        let net = cell_net.(c) in
        Array.iteri
          (fun p pin_cell ->
            Engine.load e ~instr:ld_pin nets.(net) (8 + (p * 8));
            Engine.load e ~instr:ld_pincell cells.(pin_cell) f_x)
          net_pins.(net)
      in
      let hot = Array.init 24 (fun _ -> Ormp_util.Prng.int rng n_cells) in
      for _move = 1 to scale do
        (* Annealing concentrates moves on congested regions: most picks
           come from a small hot set, and the swap partner is nearby. *)
        let a =
          if Ormp_util.Prng.chance rng 0.8 then Ormp_util.Prng.choose rng hot
          else Ormp_util.Prng.int rng n_cells
        in
        let b = min (n_cells - 1) (max 0 (a + Ormp_util.Prng.int_in rng (-6) 6)) in
        cost_of_cell a;
        cost_of_cell b;
        if Ormp_util.Prng.chance rng 0.45 then begin
          Engine.load e ~instr:ld_cx cells.(a) f_x;
          Engine.load e ~instr:ld_cx cells.(b) f_x;
          Engine.store e ~instr:st_swap cells.(a) f_x;
          Engine.store e ~instr:st_swap cells.(a) f_y;
          Engine.store e ~instr:st_swap cells.(b) f_x;
          Engine.store e ~instr:st_swap cells.(b) f_y;
          Engine.store e ~instr:st_occ occupancy (position.(a) * 8);
          Engine.store e ~instr:st_occ occupancy (position.(b) * 8);
          let tmp = position.(a) in
          position.(a) <- position.(b);
          position.(b) <- tmp
        end
      done)
