lib/workloads/registry.mli: Ormp_vm
