lib/workloads/micro.mli: Ormp_vm
