lib/workloads/gzip_like.ml: Array Engine Instr Ormp_memsim Ormp_trace Ormp_util Ormp_vm Program
