lib/workloads/twolf_like.ml: Array Engine Instr List Ormp_trace Ormp_util Ormp_vm Program
