lib/workloads/registry.ml: Bzip_like Crafty_like Gzip_like List Mcf_like Ormp_vm Parser_like Twolf_like Vpr_like
