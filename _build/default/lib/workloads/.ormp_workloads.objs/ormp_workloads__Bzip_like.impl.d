lib/workloads/bzip_like.ml: Array Engine Fun Instr Ormp_memsim Ormp_trace Ormp_util Ormp_vm Program
