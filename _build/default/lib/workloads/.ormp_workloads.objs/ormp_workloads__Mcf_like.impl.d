lib/workloads/mcf_like.ml: Array Engine Fun Instr Ormp_trace Ormp_util Ormp_vm Program
