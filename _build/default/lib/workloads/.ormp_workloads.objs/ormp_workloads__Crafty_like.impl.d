lib/workloads/crafty_like.ml: Engine Instr Ormp_memsim Ormp_trace Ormp_util Ormp_vm Program
