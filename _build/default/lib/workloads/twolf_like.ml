(* 300.twolf stand-in: standard-cell placement and routing.

   Memory character: many small individually-allocated cell objects
   accessed at fixed field offsets but in move-dependent serial order,
   plus row occupancy arrays swept linearly when a row is re-costed. The
   fixed offsets across scattered serials give twolf a fairly high access
   capture (66.5% in Table 1) despite the scatter. *)

open Ormp_vm
open Ormp_trace

let cell_bytes = 40

(* cell fields *)
let f_x = 0
let f_y = 8
let f_width = 16
let f_row = 24
let f_cost = 32

let program ?(scale = 1800) () =
  Program.make ~name:"300.twolf-like"
    ~description:"cell placement: per-cell objects, row sweeps, swap stores" (fun e ->
      let site_cell = Engine.instr e ~name:"twolf.alloc_cell" Instr.Alloc_site in
      let site_row = Engine.instr e ~name:"twolf.alloc_row" Instr.Alloc_site in
      let ld_x = Engine.instr e ~name:"twolf.ld_cell_x" Instr.Load in
      let ld_w = Engine.instr e ~name:"twolf.ld_cell_width" Instr.Load in
      let ld_row = Engine.instr e ~name:"twolf.ld_cell_row" Instr.Load in
      let ld_rowslot = Engine.instr e ~name:"twolf.ld_row_slot" Instr.Load in
      let st_x = Engine.instr e ~name:"twolf.st_cell_x" Instr.Store in
      let st_y = Engine.instr e ~name:"twolf.st_cell_y" Instr.Store in
      let ld_cost = Engine.instr e ~name:"twolf.ld_cell_cost" Instr.Load in
      let st_cost = Engine.instr e ~name:"twolf.st_cell_cost" Instr.Store in
      let st_rowslot = Engine.instr e ~name:"twolf.st_row_slot" Instr.Store in
      let rng = Engine.rng e in
      let n_cells = 300 in
      let n_rows = 10 in
      let row_slots = 64 in
      let cells =
        Array.init n_cells (fun _ -> Engine.alloc e ~site:site_cell ~type_name:"cell" cell_bytes)
      in
      let rows =
        Array.init n_rows (fun _ ->
            Engine.alloc e ~site:site_row ~type_name:"row" (row_slots * 8))
      in
      let cell_row = Array.init n_cells (fun _ -> Ormp_util.Prng.int rng n_rows) in
      for _move = 1 to scale do
        let a = Ormp_util.Prng.int rng n_cells in
        let b = Ormp_util.Prng.int rng n_cells in
        (* Cost both cells: fixed field offsets, scattered serials. *)
        List.iter
          (fun c ->
            Engine.load e ~instr:ld_x cells.(c) f_x;
            Engine.load e ~instr:ld_w cells.(c) f_width;
            Engine.load e ~instr:ld_row cells.(c) f_row)
          [ a; b ];
        (* Re-cost the affected row: a linear sweep. *)
        let r = cell_row.(a) in
        for s = 0 to row_slots - 1 do
          Engine.load e ~instr:ld_rowslot rows.(r) (s * 8)
        done;
        if Ormp_util.Prng.chance rng 0.5 then begin
          Engine.store e ~instr:st_x cells.(a) f_x;
          Engine.store e ~instr:st_y cells.(a) f_y;
          Engine.store e ~instr:st_x cells.(b) f_x;
          Engine.store e ~instr:st_y cells.(b) f_y;
          Engine.load e ~instr:ld_cost cells.(a) f_cost;
          Engine.load e ~instr:ld_cost cells.(b) f_cost;
          Engine.store e ~instr:st_cost cells.(a) f_cost;
          Engine.store e ~instr:st_cost cells.(b) f_cost;
          Engine.store e ~instr:st_rowslot rows.(r) (Ormp_util.Prng.int rng row_slots * 8);
          cell_row.(a) <- cell_row.(b);
          cell_row.(b) <- r
        end
      done)
