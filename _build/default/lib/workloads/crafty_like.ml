(* 186.crafty stand-in: chess search.

   Memory character: scattered probes into a large transposition table and
   static attack tables (hash-driven), against regular linear scans of the
   board and piece lists during evaluation — roughly half the accesses are
   capturable (50.3% in Table 1). *)

open Ormp_vm
open Ormp_trace

let program ?(scale = 1200) () =
  Program.make ~name:"186.crafty-like"
    ~description:"chess search: ttable scatter + board-scan linearity"
    ~statics:
      [
        { Ormp_memsim.Layout.name = "attack_table"; size = 64 * 64 * 8 };
        { Ormp_memsim.Layout.name = "piece_square"; size = 12 * 64 * 8 };
      ]
    (fun e ->
      let site = Engine.instr e ~name:"crafty.alloc" Instr.Alloc_site in
      let ld_tt = Engine.instr e ~name:"crafty.ld_ttable" Instr.Load in
      let st_tt = Engine.instr e ~name:"crafty.st_ttable" Instr.Store in
      let ld_att = Engine.instr e ~name:"crafty.ld_attack" Instr.Load in
      let ld_psq = Engine.instr e ~name:"crafty.ld_piece_square" Instr.Load in
      let ld_board = Engine.instr e ~name:"crafty.ld_board" Instr.Load in
      let st_board = Engine.instr e ~name:"crafty.st_board" Instr.Store in
      let ld_hist = Engine.instr e ~name:"crafty.ld_history" Instr.Load in
      let st_hist = Engine.instr e ~name:"crafty.st_history" Instr.Store in
      let rng = Engine.rng e in
      let tt_slots = 8192 in
      let ttable = Engine.alloc e ~site ~type_name:"ttable" (tt_slots * 16) in
      let board = Engine.alloc e ~site ~type_name:"board" (64 * 8) in
      let history = Engine.alloc e ~site ~type_name:"history" (4096 * 8) in
      let attack = Engine.static e "attack_table" in
      let psq = Engine.static e "piece_square" in
      for _node = 1 to scale do
        (* Transposition probe: two slots of a random bucket. *)
        let h = Ormp_util.Prng.int rng (tt_slots / 2) * 2 in
        Engine.load e ~instr:ld_tt ttable (h * 16);
        Engine.load e ~instr:ld_tt ttable ((h + 1) * 16);
        (* Move generation: attack-table lookups for a handful of moves. *)
        let moves = 4 + Ormp_util.Prng.int rng 8 in
        for _ = 1 to moves do
          let from_sq = Ormp_util.Prng.int rng 64 and to_sq = Ormp_util.Prng.int rng 64 in
          Engine.load e ~instr:ld_att attack (((from_sq * 64) + to_sq) * 8);
          Engine.load e ~instr:ld_psq psq
            (((Ormp_util.Prng.int rng 12 * 64) + to_sq) * 8)
        done;
        (* Evaluation: full linear board scan. *)
        for sq = 0 to 63 do
          Engine.load e ~instr:ld_board board (sq * 8)
        done;
        (* Make/unmake: two board stores, a history store, a ttable store. *)
        Engine.store e ~instr:st_board board (Ormp_util.Prng.int rng 64 * 8);
        Engine.store e ~instr:st_board board (Ormp_util.Prng.int rng 64 * 8);
        let hslot = Ormp_util.Prng.int rng 4096 * 8 in
        Engine.load e ~instr:ld_hist history hslot;
        Engine.store e ~instr:st_hist history hslot;
        Engine.store e ~instr:st_tt ttable (h * 16)
      done)
