(* 181.mcf stand-in: network-simplex-style pointer chasing.

   Memory character: like the real mcf, nodes and arcs live in two big
   arrays of structs (single allocations), visited in data-dependent,
   effectively shuffled order — the offsets inside those objects are
   almost never linear. mcf is the paper's worst case for LMAD capture
   (6.5% of accesses in Table 1) while still compressing enormously
   (9993x) because so little is kept. *)

open Ormp_vm
open Ormp_trace

(* node fields *)
let f_potential = 0
let f_parent = 8
let f_depth = 16

(* arc fields *)
let f_cost = 0
let f_tail = 8
let f_head = 16
let f_flow = 24

let program ?(scale = 12) () =
  Program.make ~name:"181.mcf-like"
    ~description:"network simplex: shuffled arc pricing + tree-path updates" (fun e ->
      let site_node = Engine.instr e ~name:"mcf.alloc_node" Instr.Alloc_site in
      let site_arc = Engine.instr e ~name:"mcf.alloc_arc" Instr.Alloc_site in
      let ld_cost = Engine.instr e ~name:"mcf.ld_arc_cost" Instr.Load in
      let ld_tail = Engine.instr e ~name:"mcf.ld_arc_tail" Instr.Load in
      let ld_headf = Engine.instr e ~name:"mcf.ld_arc_head" Instr.Load in
      let ld_pot_t = Engine.instr e ~name:"mcf.ld_tail_potential" Instr.Load in
      let ld_pot_h = Engine.instr e ~name:"mcf.ld_head_potential" Instr.Load in
      let ld_flow = Engine.instr e ~name:"mcf.ld_arc_flow" Instr.Load in
      let st_flow = Engine.instr e ~name:"mcf.st_arc_flow" Instr.Store in
      let ld_parent = Engine.instr e ~name:"mcf.ld_node_parent" Instr.Load in
      let st_pot = Engine.instr e ~name:"mcf.st_node_potential" Instr.Store in
      let ld_depth = Engine.instr e ~name:"mcf.ld_node_depth" Instr.Load in
      let rng = Engine.rng e in
      let n_nodes = 64 * scale in
      let n_arcs = 4 * n_nodes in
      let node_sz = 24 and arc_sz = 32 in
      (* Arrays of structs, as in the real mcf: one allocation each. *)
      let nodes = Engine.alloc e ~site:site_node ~type_name:"node[]" (n_nodes * node_sz) in
      let arcs = Engine.alloc e ~site:site_arc ~type_name:"arc[]" (n_arcs * arc_sz) in
      let node_field v f = (v * node_sz) + f in
      let arc_field a f = (a * arc_sz) + f in
      (* Shadow topology: random spanning-tree parents and random arc
         endpoints. *)
      let parent = Array.init n_nodes (fun i -> if i = 0 then -1 else Ormp_util.Prng.int rng i) in
      let tail = Array.init n_arcs (fun _ -> Ormp_util.Prng.int rng n_nodes) in
      let head = Array.init n_arcs (fun _ -> Ormp_util.Prng.int rng n_nodes) in
      let st_init_arc = Engine.instr e ~name:"mcf.st_init_arc" Instr.Store in
      let st_init_node = Engine.instr e ~name:"mcf.st_init_node" Instr.Store in
      (* Sequential initialization, as in the real mcf's array setup. *)
      for v = 0 to n_nodes - 1 do
        Engine.store e ~instr:st_init_node nodes (node_field v f_potential)
      done;
      for a = 0 to n_arcs - 1 do
        Engine.store e ~instr:st_init_arc arcs (arc_field a f_flow)
      done;
      let order = Array.init n_arcs Fun.id in
      for _iter = 1 to 4 do
        (* Pricing pass over arcs in shuffled order. *)
        Ormp_util.Prng.shuffle rng order;
        Array.iter
          (fun ai ->
            Engine.load e ~instr:ld_cost arcs (arc_field ai f_cost);
            Engine.load e ~instr:ld_tail arcs (arc_field ai f_tail);
            Engine.load e ~instr:ld_headf arcs (arc_field ai f_head);
            Engine.load e ~instr:ld_pot_t nodes (node_field tail.(ai) f_potential);
            Engine.load e ~instr:ld_pot_h nodes (node_field head.(ai) f_potential);
            if Ormp_util.Prng.chance rng 0.25 then begin
              (* read-modify-write of the flow field *)
              Engine.load e ~instr:ld_flow arcs (arc_field ai f_flow);
              Engine.store e ~instr:st_flow arcs (arc_field ai f_flow)
            end)
          order;
        (* Potential update along a random tree path. *)
        for _ = 1 to n_nodes / 4 do
          let rec climb v =
            if v >= 0 then begin
              Engine.load e ~instr:ld_parent nodes (node_field v f_parent);
              Engine.load e ~instr:ld_depth nodes (node_field v f_depth);
              Engine.store e ~instr:st_pot nodes (node_field v f_potential);
              climb parent.(v)
            end
          in
          climb (Ormp_util.Prng.int rng n_nodes)
        done
      done)
