(* 256.bzip2 stand-in: block-sorting compression.

   Memory character: very long sequential passes over a large block (fill,
   bucket count, move-to-front, output) punctuated by content-dependent
   suffix comparisons during sorting. The dominant linear passes compress
   extremely well (7152x in Table 1) while the sort scatter holds access
   capture down (31.6%). *)

open Ormp_vm
open Ormp_trace

let program ?(scale = 6000) () =
  Program.make ~name:"256.bzip2-like"
    ~description:"block sort + MTF: long linear passes, sort scatter"
    ~statics:
      [
        { Ormp_memsim.Layout.name = "freq"; size = 256 * 8 };
        { Ormp_memsim.Layout.name = "mtf_order"; size = 256 * 8 };
      ]
    (fun e ->
      let site = Engine.instr e ~name:"bzip.alloc_block" Instr.Alloc_site in
      let st_fill = Engine.instr e ~name:"bzip.st_fill" Instr.Store in
      let ld_count = Engine.instr e ~name:"bzip.ld_count" Instr.Load in
      let ld_freq = Engine.instr e ~name:"bzip.ld_freq" Instr.Load in
      let st_freq = Engine.instr e ~name:"bzip.st_freq" Instr.Store in
      let ld_sort_a = Engine.instr e ~name:"bzip.ld_sort_a" Instr.Load in
      let ld_sort_b = Engine.instr e ~name:"bzip.ld_sort_b" Instr.Load in
      let ld_mtf_in = Engine.instr e ~name:"bzip.ld_mtf_input" Instr.Load in
      let ld_mtf_scan = Engine.instr e ~name:"bzip.ld_mtf_scan" Instr.Load in
      let st_mtf = Engine.instr e ~name:"bzip.st_mtf" Instr.Store in
      let st_out = Engine.instr e ~name:"bzip.st_output" Instr.Store in
      let rng = Engine.rng e in
      let n = scale in
      let block = Engine.alloc e ~site ~type_name:"block" (n * 8) in
      let out = Engine.alloc e ~site ~type_name:"output" (n * 8) in
      let freq = Engine.static e "freq" in
      let mtf = Engine.static e "mtf_order" in
      (* Fill the block with skewed random bytes. *)
      let data = Array.make n 0 in
      for i = 0 to n - 1 do
        data.(i) <- (if Ormp_util.Prng.chance rng 0.6 then i mod 7 else Ormp_util.Prng.int rng 64);
        Engine.store e ~instr:st_fill block (i * 8)
      done;
      (* Bucket counting: linear load, content-scattered store. *)
      for i = 0 to n - 1 do
        Engine.load e ~instr:ld_count block (i * 8);
        Engine.load e ~instr:ld_freq freq (data.(i) mod 256 * 8);
        Engine.store e ~instr:st_freq freq (data.(i) mod 256 * 8)
      done;
      (* Suffix comparisons: random pairs compared to bounded depth. *)
      for _ = 1 to n / 2 do
        let i = Ormp_util.Prng.int rng n and j = Ormp_util.Prng.int rng n in
        let rec cmp k =
          if k < 6 && i + k < n && j + k < n then begin
            Engine.load e ~instr:ld_sort_a block ((i + k) * 8);
            Engine.load e ~instr:ld_sort_b block ((j + k) * 8);
            if data.(i + k) = data.(j + k) then cmp (k + 1)
          end
        in
        cmp 0
      done;
      (* Move-to-front: linear input scan, small scan bursts in the order
         table, sequential output. *)
      let order = Array.init 256 Fun.id in
      for i = 0 to n - 1 do
        Engine.load e ~instr:ld_mtf_in block (i * 8);
        let v = data.(i) mod 256 in
        let pos = ref 0 in
        while order.(!pos) <> v do
          Engine.load e ~instr:ld_mtf_scan mtf (!pos * 8);
          incr pos
        done;
        (* move to front *)
        for k = !pos downto 1 do
          order.(k) <- order.(k - 1)
        done;
        order.(0) <- v;
        Engine.store e ~instr:st_mtf mtf (!pos * 8);
        Engine.store e ~instr:st_out out (i * 8)
      done)
