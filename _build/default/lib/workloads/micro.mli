(** Small single-pattern workloads.

    Each isolates one access pattern from the paper's discussion: the
    linked-list traversal of Figures 1 and 3 (regular object-relative
    behaviour hidden by allocation artifacts), plain strided array walks,
    a blocked matrix multiply, a binary tree, hash-table probing, and a
    pointer-chasing random walk. They are used by the unit tests, the
    examples, and the ablation benches. *)

val linked_list : ?nodes:int -> ?sweeps:int -> unit -> Ormp_vm.Program.t
(** Build a list whose nodes are interleaved with decoy allocations (so raw
    addresses look arbitrary, as in Figure 1), then repeatedly walk it:
    [ld node->data; st node->data; ld node->next] per node. *)

val array_stride : ?elems:int -> ?stride:int -> ?sweeps:int -> unit -> Ormp_vm.Program.t
(** Strided walk over one heap array: the strongly-strided case. *)

val matrix : ?n:int -> unit -> Ormp_vm.Program.t
(** Naive n*n matrix multiply over three heap arrays: nested linear
    patterns with three different stride scales. *)

val binary_tree : ?nodes:int -> ?searches:int -> unit -> Ormp_vm.Program.t
(** Build a BST of individually-allocated nodes, then search random keys:
    data-dependent branching, same offsets per instruction. *)

val hash_probe : ?buckets:int -> ?ops:int -> unit -> Ormp_vm.Program.t
(** Open-addressing hash table in one heap object: pseudo-random offsets,
    the predominantly non-linear case that defeats LMAD capture. *)

val random_walk : ?nodes:int -> ?steps:int -> unit -> Ormp_vm.Program.t
(** Pointer-chasing over a random permutation cycle: regular in the object
    dimension only when viewed object-relatively. *)

val churn : ?live:int -> ?ops:int -> unit -> Ormp_vm.Program.t
(** Allocate/access/free cycles with heavy address reuse: the same raw
    address hosts many different objects over the run — the false-aliasing
    problem raw-address profiles suffer from (the paper's comparison with
    Rubin et al.), which object serial numbers resolve. *)

val two_site_list : ?nodes:int -> ?sweeps:int -> unit -> Ormp_vm.Program.t
(** The linked-list walk, but nodes are allocated at two different static
    sites (as a prepend path and an append path would be). Under [`Site]
    grouping they form two groups; under [`Type] grouping ("the compiler
    can provide type information to further refine this strategy", §3.1)
    they merge into one. *)

val all : (string * Ormp_vm.Program.t) list
(** Default-sized instances of each, keyed by name. *)
