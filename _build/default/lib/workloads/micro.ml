open Ormp_vm
open Ormp_trace

(* Field offsets shared by the node-based workloads: a data word at 0 and a
   link word at 8, as in the paper's linked-list figures. *)
let f_data = 0
let f_next = 8
let node_size = 16

let linked_list ?(nodes = 64) ?(sweeps = 32) () =
  Program.make ~name:"micro.linked_list"
    ~description:"Figure 1/3 list walk: regular object-relative, irregular raw" (fun e ->
      let site_node = Engine.instr e ~name:"list.alloc_node" Instr.Alloc_site in
      let site_decoy = Engine.instr e ~name:"list.alloc_decoy" Instr.Alloc_site in
      let ld_data = Engine.instr e ~name:"list.ld_data" Instr.Load in
      let st_data = Engine.instr e ~name:"list.st_data" Instr.Store in
      let ld_next = Engine.instr e ~name:"list.ld_next" Instr.Load in
      let rng = Engine.rng e in
      (* Interleave decoy allocations of random size so consecutive list
         nodes land at unrelated raw addresses. *)
      let node_objs =
        Array.init nodes (fun _ ->
            let n = Engine.alloc e ~site:site_node ~type_name:"node" node_size in
            if Ormp_util.Prng.chance rng 0.6 then
              ignore
                (Engine.alloc e ~site:site_decoy ~type_name:"decoy"
                   (8 * (1 + Ormp_util.Prng.int rng 16)));
            n)
      in
      for _ = 1 to sweeps do
        Array.iter
          (fun n ->
            Engine.load e ~instr:ld_data n f_data;
            Engine.store e ~instr:st_data n f_data;
            Engine.load e ~instr:ld_next n f_next)
          node_objs
      done)

let array_stride ?(elems = 1024) ?(stride = 8) ?(sweeps = 16) () =
  Program.make ~name:"micro.array_stride" ~description:"strongly-strided array sweeps" (fun e ->
      let site = Engine.instr e ~name:"array.alloc" Instr.Alloc_site in
      let ld = Engine.instr e ~name:"array.ld" Instr.Load in
      let st = Engine.instr e ~name:"array.st" Instr.Store in
      let a = Engine.alloc e ~site ~type_name:"buffer" (elems * 8) in
      for _ = 1 to sweeps do
        let i = ref 0 in
        while !i < elems * 8 do
          Engine.load e ~instr:ld a !i;
          Engine.store e ~instr:st a !i;
          i := !i + stride
        done
      done)

let matrix ?(n = 12) () =
  Program.make ~name:"micro.matrix" ~description:"naive matrix multiply, nested strides" (fun e ->
      let site = Engine.instr e ~name:"matrix.alloc" Instr.Alloc_site in
      let ld_a = Engine.instr e ~name:"matrix.ld_a" Instr.Load in
      let ld_b = Engine.instr e ~name:"matrix.ld_b" Instr.Load in
      let st_c = Engine.instr e ~name:"matrix.st_c" Instr.Store in
      let bytes = n * n * 8 in
      let a = Engine.alloc e ~site ~type_name:"matrix" bytes in
      let b = Engine.alloc e ~site ~type_name:"matrix" bytes in
      let c = Engine.alloc e ~site ~type_name:"matrix" bytes in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          for k = 0 to n - 1 do
            Engine.load e ~instr:ld_a a (((i * n) + k) * 8);
            Engine.load e ~instr:ld_b b (((k * n) + j) * 8)
          done;
          Engine.store e ~instr:st_c c (((i * n) + j) * 8)
        done
      done)

let binary_tree ?(nodes = 256) ?(searches = 512) () =
  Program.make ~name:"micro.binary_tree" ~description:"BST of heap nodes, random searches"
    (fun e ->
      let site = Engine.instr e ~name:"tree.alloc_node" Instr.Alloc_site in
      let ld_key = Engine.instr e ~name:"tree.ld_key" Instr.Load in
      let ld_left = Engine.instr e ~name:"tree.ld_left" Instr.Load in
      let ld_right = Engine.instr e ~name:"tree.ld_right" Instr.Load in
      let st_key = Engine.instr e ~name:"tree.st_key" Instr.Store in
      let rng = Engine.rng e in
      (* Shadow structure: the simulated pointers live here; the engine
         events are what a real program's field accesses would emit. *)
      let keys = Array.make nodes 0 in
      let left = Array.make nodes (-1) in
      let right = Array.make nodes (-1) in
      let objs = Array.init nodes (fun _ -> Engine.alloc e ~site ~type_name:"tnode" 24) in
      let insert idx =
        let rec go cur =
          Engine.load e ~instr:ld_key objs.(cur) 0;
          if keys.(idx) < keys.(cur) then
            if left.(cur) < 0 then left.(cur) <- idx
            else begin
              Engine.load e ~instr:ld_left objs.(cur) 8;
              go left.(cur)
            end
          else if right.(cur) < 0 then right.(cur) <- idx
          else begin
            Engine.load e ~instr:ld_right objs.(cur) 16;
            go right.(cur)
          end
        in
        keys.(idx) <- Ormp_util.Prng.int rng 100000;
        Engine.store e ~instr:st_key objs.(idx) 0;
        if idx > 0 then go 0
      in
      for i = 0 to nodes - 1 do
        insert i
      done;
      for _ = 1 to searches do
        let needle = Ormp_util.Prng.int rng 100000 in
        let rec go cur =
          if cur >= 0 then begin
            Engine.load e ~instr:ld_key objs.(cur) 0;
            if needle < keys.(cur) then begin
              Engine.load e ~instr:ld_left objs.(cur) 8;
              go left.(cur)
            end
            else if needle > keys.(cur) then begin
              Engine.load e ~instr:ld_right objs.(cur) 16;
              go right.(cur)
            end
          end
        in
        go 0
      done)

let hash_probe ?(buckets = 4096) ?(ops = 4096) () =
  Program.make ~name:"micro.hash_probe" ~description:"open-addressing probes, non-linear offsets"
    (fun e ->
      let site = Engine.instr e ~name:"hash.alloc_table" Instr.Alloc_site in
      let ld = Engine.instr e ~name:"hash.ld_slot" Instr.Load in
      let st = Engine.instr e ~name:"hash.st_slot" Instr.Store in
      let rng = Engine.rng e in
      let table = Engine.alloc e ~site ~type_name:"hashtable" (buckets * 8) in
      let occupied = Array.make buckets false in
      for _ = 1 to ops do
        let h = Ormp_util.Prng.int rng buckets in
        let rec probe i n =
          Engine.load e ~instr:ld table (i * 8);
          if occupied.(i) && n < 8 then probe ((i + 1) mod buckets) (n + 1)
          else begin
            occupied.(i) <- true;
            Engine.store e ~instr:st table (i * 8)
          end
        in
        probe h 0
      done)

let random_walk ?(nodes = 512) ?(steps = 8192) () =
  Program.make ~name:"micro.random_walk" ~description:"pointer chase over a permutation cycle"
    (fun e ->
      let site = Engine.instr e ~name:"walk.alloc_node" Instr.Alloc_site in
      let ld = Engine.instr e ~name:"walk.ld_next" Instr.Load in
      let st = Engine.instr e ~name:"walk.st_visited" Instr.Store in
      let rng = Engine.rng e in
      let objs = Array.init nodes (fun _ -> Engine.alloc e ~site ~type_name:"wnode" 16) in
      let perm = Array.init nodes Fun.id in
      Ormp_util.Prng.shuffle rng perm;
      let next = Array.make nodes 0 in
      for i = 0 to nodes - 1 do
        next.(perm.(i)) <- perm.((i + 1) mod nodes)
      done;
      let cur = ref 0 in
      for _ = 1 to steps do
        Engine.load e ~instr:ld objs.(!cur) f_next;
        Engine.store e ~instr:st objs.(!cur) f_data;
        cur := next.(!cur)
      done)

let churn ?(live = 32) ?(ops = 4096) () =
  Program.make ~name:"micro.churn"
    ~description:"alloc/access/free cycles with heavy address reuse" (fun e ->
      let site = Engine.instr e ~name:"churn.alloc" Instr.Alloc_site in
      let fsite = Engine.instr e ~name:"churn.free" Instr.Free_site in
      let ld = Engine.instr e ~name:"churn.ld" Instr.Load in
      let st = Engine.instr e ~name:"churn.st" Instr.Store in
      let rng = Engine.rng e in
      let slots = Array.init live (fun _ -> Engine.alloc e ~site ~type_name:"buf" 32) in
      for _ = 1 to ops do
        let i = Ormp_util.Prng.int rng live in
        Engine.store e ~instr:st slots.(i) 0;
        Engine.load e ~instr:ld slots.(i) 8;
        if Ormp_util.Prng.chance rng 0.3 then begin
          (* retire this object; its address is immediately reusable *)
          Engine.free e ~site:fsite slots.(i);
          slots.(i) <- Engine.alloc e ~site ~type_name:"buf" 32
        end
      done)

let two_site_list ?(nodes = 64) ?(sweeps = 16) () =
  Program.make ~name:"micro.two_site_list"
    ~description:"one node type allocated at two static sites" (fun e ->
      let site_front = Engine.instr e ~name:"list2.alloc_front" Instr.Alloc_site in
      let site_back = Engine.instr e ~name:"list2.alloc_back" Instr.Alloc_site in
      let ld_data = Engine.instr e ~name:"list2.ld_data" Instr.Load in
      let st_data = Engine.instr e ~name:"list2.st_data" Instr.Store in
      let ld_next = Engine.instr e ~name:"list2.ld_next" Instr.Load in
      let node_objs =
        Array.init nodes (fun i ->
            let site = if i mod 2 = 0 then site_front else site_back in
            Engine.alloc e ~site ~type_name:"node" node_size)
      in
      for _ = 1 to sweeps do
        Array.iter
          (fun n ->
            Engine.load e ~instr:ld_data n f_data;
            Engine.store e ~instr:st_data n f_data;
            Engine.load e ~instr:ld_next n f_next)
          node_objs
      done)

let all =
  [
    ("linked_list", linked_list ());
    ("array_stride", array_stride ());
    ("matrix", matrix ());
    ("binary_tree", binary_tree ());
    ("hash_probe", hash_probe ());
    ("random_walk", random_walk ());
    ("churn", churn ());
    ("two_site_list", two_site_list ());
  ]
