(* 164.gzip stand-in: LZ77-style compression.

   Memory character (what drives its row in the paper's tables): long
   sequential sweeps over the input and output buffers, plus hash-head and
   hash-chain tables probed at content-dependent slots. Mostly linear with
   a scattered minority — gzip shows high LMAD capture (57% of accesses in
   Table 1). *)

open Ormp_vm
open Ormp_trace

let hash_bits = 12
let hash_size = 1 lsl hash_bits
let window = 4096

let program ?(scale = 4000) () =
  Program.make ~name:"164.gzip-like"
    ~description:"LZ77 sliding-window compression: linear buffers + hash chains"
    ~statics:
      [
        { Ormp_memsim.Layout.name = "head"; size = hash_size * 8 };
        { Ormp_memsim.Layout.name = "prev"; size = window * 8 };
        { Ormp_memsim.Layout.name = "adler"; size = 8 };
      ]
    (fun e ->
      let site_buf = Engine.instr e ~name:"gzip.alloc_buf" Instr.Alloc_site in
      let ld_in = Engine.instr e ~name:"gzip.ld_input" Instr.Load in
      let ld_head = Engine.instr e ~name:"gzip.ld_head" Instr.Load in
      let ld_prev = Engine.instr e ~name:"gzip.ld_prev" Instr.Load in
      let ld_cand = Engine.instr e ~name:"gzip.ld_candidate" Instr.Load in
      (* The inner match loop is different code from the outer scan, so its
         input load is a distinct static instruction. *)
      let ld_match = Engine.instr e ~name:"gzip.ld_match" Instr.Load in
      let st_out = Engine.instr e ~name:"gzip.st_output" Instr.Store in
      let st_head = Engine.instr e ~name:"gzip.st_head" Instr.Store in
      let st_prev = Engine.instr e ~name:"gzip.st_prev" Instr.Store in
      let st_fill = Engine.instr e ~name:"gzip.st_fill" Instr.Store in
      let ld_adler = Engine.instr e ~name:"gzip.ld_adler" Instr.Load in
      let st_adler = Engine.instr e ~name:"gzip.st_adler" Instr.Store in
      let rng = Engine.rng e in
      let n = scale in
      let input = Engine.alloc e ~site:site_buf ~type_name:"input" (n * 8) in
      let output = Engine.alloc e ~site:site_buf ~type_name:"output" (n * 8) in
      let head = Engine.static e "head" in
      let prev = Engine.static e "prev" in
      let adler = Engine.static e "adler" in
      (* Shadow content with heavy repetition so matches actually occur. *)
      let data = Array.make n 0 in
      let phrase = Array.init 16 (fun _ -> Ormp_util.Prng.int rng 8) in
      for i = 0 to n - 1 do
        data.(i) <-
          (if Ormp_util.Prng.chance rng 0.8 then phrase.(i mod 16) else Ormp_util.Prng.int rng 8);
        Engine.store e ~instr:st_fill input (i * 8)
      done;
      let heads = Array.make hash_size (-1) in
      let prevs = Array.make window (-1) in
      let hash i =
        if i + 2 >= n then 0
        else (data.(i) lxor (data.(i + 1) lsl 3) lxor (data.(i + 2) lsl 6)) land (hash_size - 1)
      in
      let out_cursor = ref 0 in
      let emit () =
        Engine.store e ~instr:st_out output (!out_cursor mod n * 8);
        incr out_cursor
      in
      for i = 0 to n - 3 do
        Engine.load e ~instr:ld_in input (i * 8);
        let h = hash i in
        Engine.load e ~instr:ld_head head (h * 8);
        (* Walk the chain comparing candidate matches. *)
        let best = ref 0 in
        let cand = ref heads.(h) in
        let hops = ref 0 in
        while !cand >= 0 && !hops < 2 do
          let len = ref 0 in
          while i + !len < n && !cand + !len < i && data.(i + !len) = data.(!cand + !len) && !len < 6 do
            Engine.load e ~instr:ld_cand input ((!cand + !len) * 8);
            Engine.load e ~instr:ld_match input ((i + !len) * 8);
            incr len
          done;
          if !len > !best then best := !len;
          Engine.load e ~instr:ld_prev prev (!cand mod window * 8);
          cand := prevs.(!cand mod window);
          incr hops
        done;
        emit ();
        (* running checksum: an immediate read-modify-write dependence *)
        Engine.load e ~instr:ld_adler adler 0;
        Engine.store e ~instr:st_adler adler 0;
        Engine.store e ~instr:st_head head (h * 8);
        Engine.store e ~instr:st_prev prev (i mod window * 8);
        prevs.(i mod window) <- heads.(h);
        heads.(h) <- i
      done)
