(** A set-associative data-cache simulator.

    The optimizations the paper's profiles feed — field reordering, object
    clustering, cache-conscious placement (its references [4], [11], [13])
    — all pay off in data-cache misses, so evaluating them needs a cache
    model. This is a classic write-allocate, LRU, set-associative cache:
    accesses stream in, hit/miss counts come out. Used by the layout
    examples and the clustering benchmarks to score a layout proposed from
    a profile. *)

type config = {
  size_bytes : int;  (** total capacity *)
  line_bytes : int;  (** power of two *)
  ways : int;  (** associativity; sets = size / (line * ways) *)
}

val l1d : config
(** 16 KiB, 64-byte lines, 4-way — the first-level data cache of the
    paper's Itanium testbed, near enough. *)

val l2 : config
(** 256 KiB, 64-byte lines, 8-way. *)

type t

val create : config -> t
(** @raise Invalid_argument if the geometry is not a power-of-two split. *)

val access : t -> addr:int -> size:int -> bool
(** Touch [size] bytes at [addr]; returns [true] on a (full) hit. An
    access spanning two lines touches both and hits only if both hit. *)

val sink : t -> Ormp_trace.Sink.t
(** Feed the cache directly from probe events (loads and stores alike). *)

val accesses : t -> int
val hits : t -> int
val misses : t -> int

val miss_rate : t -> float
(** Misses over accesses; 0 when idle. *)

val reset : t -> unit
(** Clear contents and counters. *)
