type config = { size_bytes : int; line_bytes : int; ways : int }

let l1d = { size_bytes = 16 * 1024; line_bytes = 64; ways = 4 }
let l2 = { size_bytes = 256 * 1024; line_bytes = 64; ways = 8 }

type t = {
  config : config;
  sets : int;
  line_shift : int;
  (* tags.(set).(way); lru.(set).(way) = last-use stamp *)
  tags : int array array;
  lru : int array array;
  mutable clock : int;
  mutable accesses : int;
  mutable hits : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go k v = if v = 1 then k else go (k + 1) (v / 2) in
  go 0 n

let create config =
  if not (is_pow2 config.line_bytes) then invalid_arg "Cache.create: line size not a power of two";
  if config.ways <= 0 then invalid_arg "Cache.create: ways must be positive";
  let sets = config.size_bytes / (config.line_bytes * config.ways) in
  if sets <= 0 || not (is_pow2 sets) then
    invalid_arg "Cache.create: size / (line * ways) must be a positive power of two";
  {
    config;
    sets;
    line_shift = log2 config.line_bytes;
    tags = Array.init sets (fun _ -> Array.make config.ways (-1));
    lru = Array.init sets (fun _ -> Array.make config.ways 0);
    clock = 0;
    accesses = 0;
    hits = 0;
  }

let touch_line t line =
  t.clock <- t.clock + 1;
  let set = line land (t.sets - 1) in
  let tags = t.tags.(set) and lru = t.lru.(set) in
  let ways = t.config.ways in
  let rec find w = if w >= ways then None else if tags.(w) = line then Some w else find (w + 1) in
  match find 0 with
  | Some w ->
    lru.(w) <- t.clock;
    true
  | None ->
    (* evict the least recently used way *)
    let victim = ref 0 in
    for w = 1 to ways - 1 do
      if lru.(w) < lru.(!victim) then victim := w
    done;
    tags.(!victim) <- line;
    lru.(!victim) <- t.clock;
    false

let access t ~addr ~size =
  if size <= 0 then invalid_arg "Cache.access: size must be positive";
  t.accesses <- t.accesses + 1;
  let first = addr lsr t.line_shift in
  let last = (addr + size - 1) lsr t.line_shift in
  let hit = ref true in
  for line = first to last do
    if not (touch_line t line) then hit := false
  done;
  if !hit then t.hits <- t.hits + 1;
  !hit

let sink t =
  fun (ev : Ormp_trace.Event.t) ->
    match ev with
    | Access { addr; size; _ } -> ignore (access t ~addr ~size)
    | Alloc _ | Free _ -> ()

let accesses t = t.accesses
let hits t = t.hits
let misses t = t.accesses - t.hits

let miss_rate t =
  if t.accesses = 0 then 0.0 else float_of_int (misses t) /. float_of_int t.accesses

let reset t =
  Array.iter (fun a -> Array.fill a 0 (Array.length a) (-1)) t.tags;
  Array.iter (fun a -> Array.fill a 0 (Array.length a) 0) t.lru;
  t.clock <- 0;
  t.accesses <- 0;
  t.hits <- 0
