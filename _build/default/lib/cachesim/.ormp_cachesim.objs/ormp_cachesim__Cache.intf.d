lib/cachesim/cache.mli: Ormp_trace
