lib/cachesim/cache.ml: Array Ormp_trace
