(** Error distributions for the dependence-frequency evaluations
    (Figures 6-8).

    For every (store, load) pair reported dependent by either the profiler
    under test or the lossless baseline, the error is the estimated minus
    the true frequency, in percentage points (missing pairs count as 0%).
    Errors fall into 21 buckets: a dedicated exact-zero center bucket and
    ten 10-point buckets on each side, matching the paper's plots. *)

val half_buckets : int
(** 10 buckets per side. *)

val of_deps :
  truth:Ormp_baselines.Dep_types.dep list ->
  estimate:Ormp_baselines.Dep_types.dep list ->
  Ormp_util.Histogram.t
(** The error distribution over the union of dependent pairs. *)

val good_fraction : Ormp_util.Histogram.t -> float
(** Fraction of pairs "completely correct (center point) or off by no more
    than 10%" — the center bucket plus its two neighbours. 0 when empty. *)

val overestimates : Ormp_util.Histogram.t -> float
(** Fraction of pairs with strictly positive error (all buckets right of
    center). *)

val underestimates : Ormp_util.Histogram.t -> float
