lib/report/error_dist.ml: Array Histogram List Ormp_baselines Ormp_util
