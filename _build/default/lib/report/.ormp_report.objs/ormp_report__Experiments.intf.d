lib/report/experiments.mli: Ormp_baselines Ormp_leap Ormp_util Ormp_vm Ormp_workloads Registry
