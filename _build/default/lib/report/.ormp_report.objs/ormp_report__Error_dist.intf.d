lib/report/error_dist.mli: Ormp_baselines Ormp_util
