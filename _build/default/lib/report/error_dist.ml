open Ormp_util
module Dt = Ormp_baselines.Dep_types

let half_buckets = 10

let of_deps ~truth ~estimate =
  let h = Histogram.centered ~half_width:100.0 ~half_buckets in
  List.iter
    (fun (store, load) ->
      let t = Dt.find truth ~store ~load in
      let e = Dt.find estimate ~store ~load in
      Histogram.add h (100.0 *. (e -. t)))
    (Dt.pairs [ truth; estimate ]);
  h

let center_index h = (Array.length (Histogram.counts h) - 1) / 2

let frac h idx_pred =
  let counts = Histogram.counts h in
  let total = Histogram.total h in
  if total = 0 then 0.0
  else
    let n = ref 0 in
    Array.iteri (fun i c -> if idx_pred i then n := !n + c) counts;
    float_of_int !n /. float_of_int total

let good_fraction h =
  let c = center_index h in
  frac h (fun i -> i >= c - 1 && i <= c + 1)

let overestimates h =
  let c = center_index h in
  frac h (fun i -> i > c)

let underestimates h =
  let c = center_index h in
  frac h (fun i -> i < c)
