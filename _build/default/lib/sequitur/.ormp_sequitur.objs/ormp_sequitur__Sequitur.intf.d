lib/sequitur/sequitur.mli: Format
