lib/sequitur/sequitur.ml: Array Format Hashtbl List Option Ormp_util Printf
