type t = {
  name : string;
  description : string;
  statics : Ormp_memsim.Layout.entry list;
  run : Engine.t -> unit;
}

let make ~name ~description ?(statics = []) run = { name; description; statics; run }
