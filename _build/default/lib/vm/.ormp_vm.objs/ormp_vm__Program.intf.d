lib/vm/program.mli: Engine Ormp_memsim
