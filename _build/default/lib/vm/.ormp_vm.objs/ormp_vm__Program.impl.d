lib/vm/program.ml: Engine Ormp_memsim
