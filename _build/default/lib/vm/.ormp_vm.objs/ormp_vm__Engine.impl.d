lib/vm/engine.ml: Config Event Instr List Ormp_memsim Ormp_trace Ormp_util Printf Sink
