lib/vm/config.mli: Ormp_memsim
