lib/vm/engine.mli: Config Ormp_memsim Ormp_trace Ormp_util
