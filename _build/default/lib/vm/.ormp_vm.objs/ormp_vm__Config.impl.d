lib/vm/config.ml: Ormp_memsim Printf
