lib/vm/runner.mli: Config Ormp_trace Program
