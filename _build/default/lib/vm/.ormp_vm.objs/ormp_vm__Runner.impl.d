lib/vm/runner.ml: Config Engine Ormp_trace Program Sys
