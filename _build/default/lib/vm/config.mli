(** Run configuration: everything that changes a program's raw addresses
    without changing its logic.

    The paper's motivating problem is that allocator choice, linker layout
    and probe insertion shift raw addresses between runs (§1). A [Config]
    bundles exactly those knobs; running one workload under two configs
    yields different raw traces but — as the tests verify — identical
    object-relative streams. *)

type t = {
  policy : Ormp_memsim.Allocator.policy;  (** heap allocator *)
  heap_base : int;  (** heap segment origin *)
  static_base : int;  (** data segment origin (linker) *)
  static_gap : int;  (** padding between statics; models relinking drift *)
  align : int;  (** heap allocation alignment *)
  seed : int;  (** workload-internal randomness *)
}

val default : t

val variants : t -> t list
(** The default config plus a set of perturbed ones (different allocator,
    shifted segments) that keep [seed] fixed — i.e. "same input set,
    different memory artifacts". *)

val name : t -> string
(** Short human-readable tag, e.g. "first-fit@0x10000000". *)
