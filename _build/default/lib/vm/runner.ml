type result = { table : Ormp_trace.Instr.table; elapsed : float }

let run ?(config = Config.default) (program : Program.t) sink =
  let engine = Engine.make ~config ~sink ~statics:program.statics in
  let t0 = Sys.time () in
  program.run engine;
  let elapsed = Sys.time () -. t0 in
  { table = Engine.table engine; elapsed }

let run_bare ?config program = run ?config program Ormp_trace.Sink.null
