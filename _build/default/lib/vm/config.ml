type t = {
  policy : Ormp_memsim.Allocator.policy;
  heap_base : int;
  static_base : int;
  static_gap : int;
  align : int;
  seed : int;
}

let default =
  {
    policy = Ormp_memsim.Allocator.First_fit;
    heap_base = 0x1000_0000;
    static_base = 0x0804_8000;
    static_gap = 0;
    align = 16;
    seed = 1;
  }

let variants c =
  [
    c;
    { c with policy = Ormp_memsim.Allocator.Bump; heap_base = 0x2000_0000 };
    { c with policy = Ormp_memsim.Allocator.Best_fit; static_gap = 48 };
    { c with policy = Ormp_memsim.Allocator.Segregated; static_base = 0x0806_0000 };
    { c with policy = Ormp_memsim.Allocator.Randomized 7 };
  ]

let name c =
  Printf.sprintf "%s@%#x" (Ormp_memsim.Allocator.policy_name c.policy) c.heap_base
