(** A profile-able workload. *)

type t = {
  name : string;  (** short identifier, e.g. "164.gzip-like" *)
  description : string;  (** one line on the memory behaviour it models *)
  statics : Ormp_memsim.Layout.entry list;  (** its global variables *)
  run : Engine.t -> unit;  (** the program body *)
}

val make :
  name:string -> description:string -> ?statics:Ormp_memsim.Layout.entry list ->
  (Engine.t -> unit) -> t
