(** Driving a workload under a configuration.

    [run] is the whole "instrumented execution": it builds an engine for the
    given config, points the probes at [sink], executes the program, and
    reports wall time — which is how the dilation factors of Table 1 are
    measured (profiled run time / bare run time on the same config). *)

type result = {
  table : Ormp_trace.Instr.table;  (** program points registered by the run *)
  elapsed : float;  (** CPU seconds spent in the run, probes included *)
}

val run : ?config:Config.t -> Program.t -> Ormp_trace.Sink.t -> result

val run_bare : ?config:Config.t -> Program.t -> result
(** Same execution with all probes discarded — the "native" run. *)
