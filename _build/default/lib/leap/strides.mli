(** Stride post-processor (§4.2.2).

    "With the collected LMADs, identifying strongly strided instructions
    requires a trivial post-process which examines all offset strides
    captured for a given instruction." Following the paper, only strides
    {e within objects} are considered: descriptors whose object-dimension
    stride is zero (the overwhelming majority, thanks to custom pools
    being single objects). An instruction is strongly strided when one
    offset stride covers at least [threshold] of its stride instances. *)

val strongly_strided : ?threshold:float -> Leap.profile -> (int * int) list
(** [(instruction, dominant stride)] pairs, sorted by instruction id.
    Default threshold 0.7 (Wu's definition, adopted by the paper). *)

val stride_weights : Leap.profile -> int -> (int * int) list
(** [(stride, weight)] evidence the post-process sees for one instruction,
    heaviest first; weight is the number of consecutive-access pairs inside
    zero-object-stride descriptors. *)
