(** Alias queries on a LEAP profile.

    The paper's abstract claims LEAP "correctly characterizes the memory
    alias rates" of instruction pairs: a compiler deciding whether two
    memory operations may touch the same data wants, for any pair
    (not just store -> load), the fraction of one instruction's accesses
    that land on locations the other also touches. This module answers
    that from the compact profile alone, using the same spatial
    machinery as the dependence post-processor but without temporal
    ordering (aliasing is direction- and time-agnostic). *)

val may_alias : Leap.profile -> a:int -> b:int -> bool
(** Do any descriptors (captured or summarized) of the two instructions
    overlap in some shared group? Conservative in the summarized case (a
    box may cover locations never touched). *)

val alias_rate : Leap.profile -> a:int -> b:int -> float
(** Estimated fraction of [b]'s accesses whose location instruction [a]
    also accesses, in [\[0, 1\]]. 0 when the instructions share no group
    or [b] never executed. *)

val rates : Leap.profile -> (int * int * float) list
(** [alias_rate] for every unordered instruction pair with a positive
    rate, as [(a, b, rate)] with [a < b], sorted. The rate reported is the
    larger of the two directions. *)
