(** Memory-dependence-frequency post-processor (§4.2.1).

    For every (store, load) instruction pair, estimate the
    read-after-write frequency

    {v MDF(st, ld) = conflicts with st / total executions of ld v}

    from the LMAD profile alone: store and load descriptors over the same
    group are intersected with {!Ormp_lmad.Solver.count_conflicts} (the
    omega-test-like closed form). The estimate errs in both directions —
    discarded accesses hide conflicts, and the descriptors cannot see
    intervening kills by other stores — which is exactly the two-sided
    error distribution of Figure 6. *)

val compute : Leap.profile -> Ormp_baselines.Dep_types.dep list
(** All pairs with estimated frequency > 0, sorted by (store, load).
    Frequencies are clamped to [\[0, 1\]]. *)
