lib/leap/mdf.mli: Leap Ormp_baselines
