lib/leap/strides.mli: Leap
