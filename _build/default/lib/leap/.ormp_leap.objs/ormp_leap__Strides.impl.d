lib/leap/strides.ml: Array Hashtbl Leap List Option Ormp_lmad
