lib/leap/leap.ml: Array Hashtbl List Option Ormp_core Ormp_lmad Ormp_util Ormp_vm Printf
