lib/leap/mdf.ml: Array Float Leap List Ormp_baselines Ormp_lmad Ormp_util
