lib/leap/leap.mli: Hashtbl Ormp_core Ormp_lmad Ormp_trace Ormp_util Ormp_vm
