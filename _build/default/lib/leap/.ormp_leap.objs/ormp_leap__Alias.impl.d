lib/leap/alias.ml: Float Leap List Ormp_lmad
