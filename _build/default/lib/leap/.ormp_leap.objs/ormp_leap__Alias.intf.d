lib/leap/alias.mli: Leap
