lib/whomp/whomp.ml: Array List Ormp_core Ormp_sequitur Ormp_trace Ormp_vm Printf
