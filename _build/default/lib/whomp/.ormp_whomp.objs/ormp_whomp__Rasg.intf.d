lib/whomp/rasg.mli: Ormp_sequitur Ormp_trace Ormp_vm
