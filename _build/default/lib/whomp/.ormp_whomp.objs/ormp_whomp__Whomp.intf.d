lib/whomp/whomp.mli: Ormp_core Ormp_sequitur Ormp_trace Ormp_vm
