lib/whomp/rasg.ml: Ormp_sequitur Ormp_trace Ormp_vm
