lib/interval/range_index.mli:
