lib/interval/range_index.ml: Option Printf
