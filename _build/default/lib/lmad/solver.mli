(** Omega-test-like intersection of LMADs (§4.2.1).

    The memory-dependence post-processor must count, for a store LMAD and a
    load LMAD over the same (instruction, group) space, how many load
    iterations touch a location some store iteration also touches. The
    paper speeds this up "using some omega-test-like linear programming
    algorithms"; this module does the same:

    - levels whose stride is zero in every location dimension do not move
      the location and are projected out (they only contribute iteration
      multiplicity);
    - the remaining one-level-versus-one-level case — by far the common
      one — is solved exactly in closed form with extended-gcd reasoning
      over the bounded two-variable diophantine system;
    - deeper descriptors are handled by enumerating outer levels within a
      bounded work budget, falling back to a conservative upper bound
      (min of the two iteration counts) if the budget is exceeded.

    All counts are exact except in the explicitly-bounded deep cases. *)

val count_matches : store:Lmad.t -> load:Lmad.t -> int
(** Number of load iterations whose point coincides with some store
    iteration's point; every dimension is location.
    @raise Invalid_argument on dimensionality mismatch. *)

val count_conflicts : store:Lmad.t -> load:Lmad.t -> int
(** Read-after-write count with layout [\[| location dims... ; time |\]]:
    load iterations whose location some store iteration wrote {e at an
    earlier time}. Exact closed form when both descriptors have at most
    one level; deeper descriptors are enumerated within the work budget
    (falling back to the time-free {!count_matches}).
    @raise Invalid_argument on layout mismatch. *)

val overlaps : a:Lmad.t -> b:Lmad.t -> bool
(** Ignore the trailing time dimension: do the two descriptors touch any
    common location at all? *)
