lib/lmad/solver.mli: Lmad
