lib/lmad/lmad.ml: Array Format List Ormp_util String
