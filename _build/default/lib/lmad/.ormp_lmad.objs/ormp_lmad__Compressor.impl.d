lib/lmad/compressor.ml: Array List Lmad Ormp_util
