lib/lmad/lmad.mli: Format
