lib/lmad/compressor.mli: Lmad
