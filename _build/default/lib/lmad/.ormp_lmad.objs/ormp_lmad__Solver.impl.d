lib/lmad/solver.ml: Array List Lmad Option Ormp_util
