type level = { stride : int array; count : int }

type t = { start : int array; levels : level list }

let make p = { start = Array.copy p; levels = [] }

let dims d = Array.length d.start

let of_levels ~start ~levels =
  let n = Array.length start in
  List.iter
    (fun l ->
      if Array.length l.stride <> n then invalid_arg "Lmad.of_levels: dimension mismatch";
      if l.count < 1 then invalid_arg "Lmad.of_levels: level count must be positive")
    levels;
  { start = Array.copy start; levels = List.filter (fun l -> l.count > 1) levels }

let depth d = List.length d.levels

let size d = List.fold_left (fun acc l -> acc * l.count) 1 d.levels

let point d k =
  if k < 0 || k >= size d then invalid_arg "Lmad.point: index out of range";
  let p = Array.copy d.start in
  let rem = ref k in
  List.iter
    (fun l ->
      let idx = !rem mod l.count in
      rem := !rem / l.count;
      for i = 0 to dims d - 1 do
        p.(i) <- p.(i) + (idx * l.stride.(i))
      done)
    d.levels;
  p

let last d = point d (size d - 1)

let points d = List.init (size d) (point d)

let byte_size d =
  Ormp_util.Bytesize.of_ints (Array.to_list d.start)
  + List.fold_left
      (fun acc l ->
        acc + Ormp_util.Bytesize.of_ints (Array.to_list l.stride)
        + Ormp_util.Bytesize.varint l.count)
      0 d.levels

let pp_vec fmt v =
  Format.fprintf fmt "(%s)" (String.concat "," (List.map string_of_int (Array.to_list v)))

let pp fmt d =
  Format.fprintf fmt "[%a" pp_vec d.start;
  List.iter (fun l -> Format.fprintf fmt " +%ax%d" pp_vec l.stride l.count) d.levels;
  Format.fprintf fmt "]"
