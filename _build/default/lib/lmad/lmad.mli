(** Linear memory access descriptors (LMADs).

    Following Paek & Hoeflinger's model (the paper's reference [9]), an
    LMAD describes the footprint of a loop nest: a start point plus one
    {e level} per loop, each with a per-dimension stride and an iteration
    count. A descriptor with levels [(s1,c1); (s2,c2); ...] (innermost
    first) covers the points

    {v start + k1*s1 + k2*s2 + ...   with 0 <= ki < ci v}

    enumerated with the innermost index fastest — exactly the order a loop
    nest touches them. A one-level LMAD is the paper's [\[start, stride,
    count\]] triple; the empty-level descriptor is a single point. LEAP
    uses points in (object, offset) space (n = 2). *)

type level = { stride : int array; count : int }
(** One loop level: [count] iterations stepping by [stride]. [count] >= 2
    in well-formed descriptors (a 1-iteration level is redundant). *)

type t = private {
  start : int array;  (** first point *)
  levels : level list;  (** innermost first; empty = single point *)
}

val make : int array -> t
(** Single-point descriptor. The array is copied. *)

val of_levels : start:int array -> levels:level list -> t
(** Build a descriptor directly (innermost level first). Redundant levels
    ([count <= 1]) are dropped.
    @raise Invalid_argument on dimension mismatches. *)

val dims : t -> int
(** Dimensionality of the points. *)

val depth : t -> int
(** Number of levels. *)

val size : t -> int
(** Total number of points (product of level counts; 1 when no levels). *)

val point : t -> int -> int array
(** [point d k] is the [k]-th point in loop order, [0 <= k < size d]. *)

val last : t -> int array
val points : t -> int array list
(** All points in order; for tests and small descriptors only. *)

val byte_size : t -> int
(** Serialized size: varint bytes of the start, every level's stride and
    count. *)

val pp : Format.formatter -> t -> unit
(** "[(0,0) +(0,8)x64 +(32,0)x100]"-style rendering. *)
