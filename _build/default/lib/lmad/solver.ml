open Ormp_util.Stats

(* ------------------------------------------------------------------ *)
(* Exact one-level core: bounded two-variable diophantine system        *)
(* ------------------------------------------------------------------ *)

(* Solutions of the location-equality system, parametrized over the integers:
   - [Free]: every (k1, k2) pair satisfies the system so far;
   - [Line]: k1 = p + q*t, k2 = r + s*t for t in Z, with (q, s) <> (0, 0);
   - [Point]: exactly one (k1, k2);
   - [Empty]: no solutions. *)
type sol =
  | Free
  | Line of { p : int; q : int; r : int; s : int }
  | Point of { k1 : int; k2 : int }
  | Empty

(* Refine [sol] with the equation a*k1 - b*k2 = c. *)
let refine sol (a, b, c) =
  match sol with
  | Empty -> Empty
  | Point { k1; k2 } -> if (a * k1) - (b * k2) = c then sol else Empty
  | Free ->
    if a = 0 && b = 0 then if c = 0 then Free else Empty
    else if a = 0 then
      (* -b*k2 = c: k2 fixed, k1 free. *)
      if c mod b = 0 then Line { p = 0; q = 1; r = -c / b; s = 0 } else Empty
    else if b = 0 then if c mod a = 0 then Line { p = c / a; q = 0; r = 0; s = 1 } else Empty
    else
      let g, x, y = egcd a b in
      if c mod g <> 0 then Empty
      else
        (* a*x + b*y = g, so k1 = x*(c/g), k2 = -y*(c/g) solves a*k1 - b*k2 = c. *)
        let m = c / g in
        Line { p = x * m; q = b / g; r = -y * m; s = a / g }
  | Line { p; q; r; s } ->
    let coef = (a * q) - (b * s) in
    let rhs = c - (a * p) + (b * r) in
    if coef = 0 then if rhs = 0 then sol else Empty
    else if rhs mod coef <> 0 then Empty
    else
      let t = rhs / coef in
      Point { k1 = p + (q * t); k2 = r + (s * t) }

(* Half-open integer intervals with +/- infinity sentinels. *)
let neg_inf = min_int / 4
let pos_inf = max_int / 4

let inter (lo1, hi1) (lo2, hi2) = (max lo1 lo2, min hi1 hi2)

(* t-interval of { t | lo <= off + coef*t <= hi }; coef may be 0. *)
let affine_range ~off ~coef ~lo ~hi =
  if coef = 0 then if off >= lo && off <= hi then (neg_inf, pos_inf) else (0, -1)
  else if coef > 0 then (cdiv (lo - off) coef, fdiv (hi - off) coef)
  else (cdiv (off - hi) (-coef), fdiv (off - lo) (-coef))

(* t-interval of { t | coef*t < bound }; coef may be 0. *)
let strict_upper ~coef ~bound =
  if coef = 0 then if 0 < bound then (neg_inf, pos_inf) else (0, -1)
  else if coef > 0 then (neg_inf, fdiv (bound - 1) coef)
  else ((fdiv (-bound) (-coef)) + 1, pos_inf)

let width (lo, hi) = if hi < lo then 0 else hi - lo + 1

(* A one-level view: start + k*stride, 0 <= k < count. *)
type ap = { base : int array; step : int array; num : int }

(* Count distinct k2 of [b] matching some k1 of [a] over [loc_dims]
   dimensions, optionally requiring strictly earlier time in dimension
   [time_dim]. *)
let count_ap ?time_dim ~loc_dims a b =
  let sol = ref Free in
  for d = 0 to loc_dims - 1 do
    sol := refine !sol (a.step.(d), b.step.(d), b.base.(d) - a.base.(d))
  done;
  let ts1, tst1, ts2, tst2 =
    match time_dim with
    | Some d -> (a.base.(d), a.step.(d), b.base.(d), b.step.(d))
    | None -> (0, 0, 1, 0) (* pseudo-times make t1 < t2 vacuously true *)
  in
  match !sol with
  | Empty -> 0
  | Point { k1; k2 } ->
    if k1 >= 0 && k1 < a.num && k2 >= 0 && k2 < b.num && ts1 + (tst1 * k1) < ts2 + (tst2 * k2)
    then 1
    else 0
  | Line { p; q; r; s } ->
    (* Bounds on k1 and k2 and the temporal-order inequality are all affine
       in the line parameter t; intersect their t-intervals. *)
    let range =
      inter
        (affine_range ~off:p ~coef:q ~lo:0 ~hi:(a.num - 1))
        (affine_range ~off:r ~coef:s ~lo:0 ~hi:(b.num - 1))
    in
    (* t1 < t2: tst1*(p + q*t) + ts1 < tst2*(r + s*t) + ts2. *)
    let coef = (tst1 * q) - (tst2 * s) in
    let bound = ts2 - ts1 + (tst2 * r) - (tst1 * p) in
    let range = inter range (strict_upper ~coef ~bound) in
    if s = 0 then (* one k2 for the whole line *) if width range > 0 then 1 else 0
    else width range
  | Free ->
    (* Same single location for every iteration of both descriptors: a load
       iteration conflicts iff the earliest store beats it. *)
    let earliest_store = ts1 + min 0 (tst1 * (a.num - 1)) in
    let range = inter (0, b.num - 1) (strict_upper ~coef:(-tst2) ~bound:(ts2 - earliest_store)) in
    width range

(* ------------------------------------------------------------------ *)
(* Nested descriptors: projection and bounded enumeration               *)
(* ------------------------------------------------------------------ *)

exception Work_exceeded

let work_budget = 65536

(* Location projection over the first [loc_dims] dimensions: levels that do
   not move the location are dropped; their counts multiply the iteration
   multiplicity of each remaining lattice point. *)
let project ~loc_dims (d : Lmad.t) =
  let moving, still =
    List.partition
      (fun (l : Lmad.level) ->
        let rec nz i = i < loc_dims && (l.stride.(i) <> 0 || nz (i + 1)) in
        nz 0)
      d.levels
  in
  let mult = List.fold_left (fun acc (l : Lmad.level) -> acc * l.count) 1 still in
  (d.start, moving, mult)

let shift start (l : Lmad.level) j =
  Array.init (Array.length start) (fun i -> start.(i) + (j * l.stride.(i)))

(* split levels (innermost first) into (inner levels, outermost level) *)
let split_outer levels =
  match List.rev levels with
  | [] -> None
  | outer :: rev_inner -> Some (List.rev rev_inner, outer)

let ap_of ~dims start levels =
  match levels with
  | [] -> Some { base = start; step = Array.make dims 0; num = 1 }
  | [ (l : Lmad.level) ] -> Some { base = start; step = l.stride; num = l.count }
  | _ -> None

let lattice_size levels = List.fold_left (fun acc (l : Lmad.level) -> acc * l.count) 1 levels

(* Membership of a point in the (start, levels) lattice over [loc_dims]
   dimensions, enumerating outer levels. *)
let rec mem ~work ~loc_dims start levels point =
  decr work;
  if !work <= 0 then raise Work_exceeded;
  match split_outer levels with
  | None ->
    let rec eq i = i >= loc_dims || (start.(i) = point.(i) && eq (i + 1)) in
    eq 0
  | Some (inner, outer) ->
    if inner = [] then
      (* single AP: solve directly *)
      let k = ref None in
      let ok = ref true in
      for i = 0 to loc_dims - 1 do
        let delta = point.(i) - start.(i) in
        if outer.Lmad.stride.(i) = 0 then (if delta <> 0 then ok := false)
        else if delta mod outer.Lmad.stride.(i) <> 0 then ok := false
        else
          let ki = delta / outer.Lmad.stride.(i) in
          match !k with
          | None -> if ki >= 0 && ki < outer.Lmad.count then k := Some ki else ok := false
          | Some k0 -> if ki <> k0 then ok := false
      done;
      !ok && (!k <> None || (* all strides zero: point = start *) true)
    else
      let rec try_j j =
        j < outer.Lmad.count
        && (mem ~work ~loc_dims (shift start outer j) inner point || try_j (j + 1))
      in
      try_j 0

(* Count iterations of the (lstart, llevels) lattice whose location lies in
   the (sstart, slevels) lattice. Exact in the depth <= 1 cases; outer
   levels are enumerated under the work budget. *)
let rec matched ~work ~loc_dims ~dims (sstart, slevels) (lstart, llevels) =
  decr work;
  if !work <= 0 then raise Work_exceeded;
  match (ap_of ~dims sstart slevels, ap_of ~dims lstart llevels) with
  | Some sa, Some la -> count_ap ~loc_dims sa la
  | _, None ->
    (* deep load: enumerate its outermost level; iterations of distinct
       outer indices are distinct, so the sum is exact *)
    let inner, outer = Option.get (split_outer llevels) in
    let acc = ref 0 in
    for j = 0 to outer.Lmad.count - 1 do
      acc := !acc + matched ~work ~loc_dims ~dims (sstart, slevels) (shift lstart outer j, inner)
    done;
    !acc
  | None, Some la ->
    (* deep store, shallow load: test each load iteration for membership in
       the store lattice (exact, union semantics) *)
    if la.num <= 4096 then begin
      let acc = ref 0 in
      for k = 0 to la.num - 1 do
        let point = Array.init dims (fun i -> la.base.(i) + (k * la.step.(i))) in
        if mem ~work ~loc_dims sstart slevels point then incr acc
      done;
      !acc
    end
    else begin
      (* long load: sum per store row, capped (may overcount union) *)
      let inner, outer = Option.get (split_outer slevels) in
      let acc = ref 0 in
      for j = 0 to outer.Lmad.count - 1 do
        acc := !acc + matched ~work ~loc_dims ~dims (shift sstart outer j, inner) (lstart, llevels)
      done;
      min !acc la.num
    end

let check_dims store load =
  let n = Lmad.dims store in
  if Lmad.dims load <> n then invalid_arg "Solver: dimensionality mismatch";
  n

let count_matches ~store ~load =
  let dims = check_dims store load in
  let sstart, snz, _ = project ~loc_dims:dims store in
  let lstart, lnz, lmult = project ~loc_dims:dims load in
  let work = ref work_budget in
  match matched ~work ~loc_dims:dims ~dims (sstart, snz) (lstart, lnz) with
  | n -> n * lmult
  | exception Work_exceeded ->
    (* conservative upper bound *)
    min (Lmad.size load) (lattice_size lnz * lmult)

let count_conflicts ~store ~load =
  let n = check_dims store load in
  if n < 2 then invalid_arg "Solver: need at least one location dim plus time";
  match
    ( ap_of ~dims:n store.Lmad.start store.Lmad.levels,
      ap_of ~dims:n load.Lmad.start load.Lmad.levels )
  with
  | Some sa, Some la -> count_ap ~time_dim:(n - 1) ~loc_dims:(n - 1) sa la
  | _ ->
    (* Deep descriptors: enumerate when small enough, otherwise fall back
       to the time-free spatial count (an upper bound). *)
    if Lmad.size store * Lmad.size load <= work_budget then begin
      let stores = Lmad.points store in
      let loads = Lmad.points load in
      let loc p = Array.sub p 0 (n - 1) in
      List.length
        (List.filter
           (fun lp ->
             List.exists (fun sp -> loc sp = loc lp && sp.(n - 1) < lp.(n - 1)) stores)
           loads)
    end
    else count_matches ~store ~load

let drop_time (d : Lmad.t) =
  let n = Lmad.dims d in
  Lmad.of_levels
    ~start:(Array.sub d.Lmad.start 0 (n - 1))
    ~levels:
      (List.map
         (fun (l : Lmad.level) -> { l with Lmad.stride = Array.sub l.stride 0 (n - 1) })
         d.Lmad.levels)

let overlaps ~a ~b =
  let n = check_dims a b in
  if n < 2 then invalid_arg "Solver: need at least one location dim plus time";
  count_matches ~store:(drop_time a) ~load:(drop_time b) > 0
