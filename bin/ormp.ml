(* ormp — command-line front end to the object-relative memory profilers.

   Subcommands:
     list          enumerate available workloads
     trace         run a workload and dump its probe events (raw or
                   object-relative)
     whomp         collect a WHOMP (OMSG) profile, compare against RASG
     leap          collect a LEAP profile; optionally run the dependence
                   and stride post-processors
     check         sanitize a workload run (ORMP-San) or verify a saved
                   profile's structural invariants
     compare       per-pair dependence table: lossless vs LEAP vs Connors
     record        write a raw probe-event trace to a file
     replay        stream a recorded trace through any profiler
     post          run the LEAP post-processors on a saved profile
     analyze       hot data streams, object clustering, phase detection
     session       crash-safe sessions: run / resume / status, and the
                   supervised suite runner
     serve         long-running multi-tenant profiling daemon on a Unix
                   socket, with crash-recoverable sessions and shedding
     client        stream a workload to a serve daemon (with retry,
                   resume, fault injection and a latency report)

   Exit codes are centralized in {!Exit_codes}: 0 ok, 1 findings or
   runtime failure, 2 usage error, 9 killed by an injected fault (the
   session remains resumable). *)

open Cmdliner
module Registry = Ormp_workloads.Registry
module Telemetry = Ormp_telemetry.Telemetry

(* --- telemetry and logging flags (shared by the profiling commands) --- *)

let telemetry_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "telemetry" ] ~docv:"DIR"
        ~doc:
          "Switch on the self-profiling telemetry layer and write its reports — \
           metrics.sexp, metrics.json and a Chrome trace_event trace.json — to DIR \
           after the run. Inspect with $(b,ormp stats) $(i,DIR).")

let quiet_arg =
  Arg.(
    value & flag
    & info [ "quiet"; "q" ]
        ~doc:
          "Suppress library diagnostics on stderr (log level quiet; the ORMP_LOG \
           environment variable sets the default level).")

let apply_quiet quiet =
  if quiet then Ormp_telemetry.Log.set_level Ormp_telemetry.Log.Quiet

(* Runs [f] with telemetry enabled when --telemetry DIR was given: the
   whole profiled run becomes one top-level span, and the reports are
   written to DIR even when [f] escapes with an exception (an injected
   session crash still leaves inspectable telemetry behind). *)
let with_telemetry telemetry ~name f =
  match telemetry with
  | None -> f ()
  | Some dir ->
    Telemetry.enable ();
    Fun.protect
      ~finally:(fun () ->
        Telemetry.write_reports ~dir;
        Telemetry.disable ())
      (fun () -> Telemetry.span ~name f)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let find_program name =
  match List.assoc_opt name Ormp_workloads.Micro.all with
  | Some p -> p
  | None -> (
    try Registry.program (Registry.find name)
    with Not_found ->
      Printf.eprintf "unknown workload %S; available workloads:\n" name;
      List.iter
        (fun e -> Printf.eprintf "  %s\n" e.Registry.name)
        Registry.spec;
      List.iter (fun (n, _) -> Printf.eprintf "  %s\n" n) Ormp_workloads.Micro.all;
      Exit_codes.exit_usage ())

let workload_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"WORKLOAD" ~doc:"Workload name (see $(b,ormp list)).")

let config_of ~seed ~policy =
  let policy =
    match policy with
    | "bump" -> Ormp_memsim.Allocator.Bump
    | "first-fit" -> Ormp_memsim.Allocator.First_fit
    | "best-fit" -> Ormp_memsim.Allocator.Best_fit
    | "segregated" -> Ormp_memsim.Allocator.Segregated
    | "randomized" -> Ormp_memsim.Allocator.Randomized 7
    | other -> Exit_codes.usagef "unknown allocator %S" other
  in
  { Ormp_vm.Config.default with Ormp_vm.Config.policy; seed }

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc:"Workload input seed.")

let policy_arg =
  Arg.(
    value
    & opt string "first-fit"
    & info [ "allocator" ] ~docv:"POLICY"
        ~doc:"Heap allocator: bump, first-fit, best-fit, segregated or randomized.")

let sanitize_arg =
  Arg.(
    value & flag
    & info [ "sanitize" ]
        ~doc:
          "Attach the object-relative memory sanitizer to the same instrumented run and \
           append its report. Exit status 1 if it reports errors or warnings.")

let jobs_arg =
  Arg.(
    value & opt int 0
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Domains for the pipeline-parallel SCC, counting the producer: with N > 1 each \
           compressor stream runs on its own domain behind a lock-free SPSC ring. 0 (the \
           default) uses the machine's recommended domain count; 1 forces the serial \
           path. Profiles are byte-identical for every N.")

let resolve_jobs jobs =
  if jobs < 0 then Exit_codes.usagef "--jobs must be non-negative (got %d)" jobs;
  if jobs = 0 then Domain.recommended_domain_count () else jobs

let emit_sanitizer_report san ~table ~subject =
  let site_name i = (Ormp_trace.Instr.info table i).Ormp_trace.Instr.name in
  let r = Ormp_check.Sanitizer.finish ~site_name ~subject san in
  print_newline ();
  Format.printf "%a" Ormp_check.Report.render r;
  if not (Ormp_check.Report.clean r) then Exit_codes.exit_findings ()

(* --- list ----------------------------------------------------------- *)

let list_cmd =
  let run () =
    print_endline "SPEC2000 stand-ins (the paper's Table 1 rows):";
    List.iter
      (fun e ->
        let p = Registry.program e in
        Printf.printf "  %-18s %s\n" e.Registry.name p.Ormp_vm.Program.description)
      Registry.spec;
    print_endline "\nMicro workloads:";
    List.iter
      (fun (n, p) -> Printf.printf "  %-18s %s\n" n p.Ormp_vm.Program.description)
      Ormp_workloads.Micro.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List available workloads") Term.(const run $ const ())

(* --- trace ---------------------------------------------------------- *)

let trace_cmd =
  let run workload seed policy limit object_relative sanitize jobs telemetry quiet =
    apply_quiet quiet;
    (* Tracing has no compressor stage to parallelize; the flag is accepted
       (and validated) for CLI symmetry with whomp/leap/session. *)
    ignore (resolve_jobs jobs);
    let program = find_program workload in
    let config = config_of ~seed ~policy in
    let printed = ref 0 in
    let san = Ormp_check.Sanitizer.create () in
    let with_sanitizer sink =
      if sanitize then Ormp_trace.Sink.fanout [ sink; Ormp_check.Sanitizer.sink san ]
      else sink
    in
    let result =
      with_telemetry telemetry ~name:("trace:" ^ workload) @@ fun () ->
      if object_relative then begin
        let cdc =
          Ormp_core.Cdc.create
            ~site_name:(Printf.sprintf "site%d")
            ~on_tuple:(fun tu ->
              if !printed < limit then begin
                Format.printf "%a@." Ormp_core.Tuple.pp tu;
                incr printed
              end)
            ()
        in
        let result =
          Ormp_vm.Runner.run ~config program (with_sanitizer (Ormp_core.Cdc.sink cdc))
        in
        Printf.printf "... %d accesses collected, %d wild\n"
          (Ormp_core.Cdc.collected cdc) (Ormp_core.Cdc.wild cdc);
        result
      end
      else begin
        let total = ref 0 in
        let sink ev =
          incr total;
          if !printed < limit then begin
            Format.printf "%a@." Ormp_trace.Event.pp ev;
            incr printed
          end
        in
        let result = Ormp_vm.Runner.run ~config program (with_sanitizer sink) in
        Printf.printf "... %d events total\n" !total;
        result
      end
    in
    if sanitize then
      emit_sanitizer_report san ~table:result.Ormp_vm.Runner.table ~subject:workload
  in
  let limit =
    Arg.(value & opt int 40 & info [ "limit"; "n" ] ~docv:"N" ~doc:"Events to print.")
  in
  let object_relative =
    Arg.(
      value & flag
      & info [ "object-relative"; "r" ]
          ~doc:"Print translated (instr, group, object, offset, time) tuples instead of raw events.")
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Dump a workload's probe events")
    Term.(
      const run $ workload_arg $ seed_arg $ policy_arg $ limit $ object_relative
      $ sanitize_arg $ jobs_arg $ telemetry_arg $ quiet_arg)

(* --- whomp ---------------------------------------------------------- *)

let whomp_cmd =
  let run workload seed policy show_grammar save sanitize jobs telemetry quiet =
    apply_quiet quiet;
    let jobs = resolve_jobs jobs in
    let program = find_program workload in
    let config = config_of ~seed ~policy in
    (* With --sanitize, one instrumented run feeds both the profiler and
       the sanitizer through a batch fanout — the sanitizer sees exactly
       the probe stream the profile was built from. *)
    let san = Ormp_check.Sanitizer.create () in
    let san_table =
      with_telemetry telemetry ~name:("whomp:" ^ workload) @@ fun () ->
      let p, san_table =
        if not sanitize then
          ( (if jobs > 1 then Ormp_whomp.Par_scc.profile ~config ~jobs program
             else Ormp_whomp.Whomp.profile ~config program),
            None )
        else if jobs > 1 then begin
          let t = Ormp_whomp.Par_scc.create ~jobs ~site_name:(Printf.sprintf "site%d") () in
          Fun.protect
            ~finally:(fun () -> try Ormp_whomp.Par_scc.shutdown t with _ -> ())
            (fun () ->
              let fan =
                Ormp_trace.Batch.fanout
                  [ Ormp_whomp.Par_scc.batch t; Ormp_check.Sanitizer.batch san ]
              in
              let result = Ormp_vm.Runner.run_batched ~config program fan in
              ( Ormp_whomp.Par_scc.finalize t ~elapsed:result.Ormp_vm.Runner.elapsed,
                Some result.Ormp_vm.Runner.table ))
        end
      else begin
        let wb, fin =
          Ormp_whomp.Whomp.sink_batched ~site_name:(Printf.sprintf "site%d") ()
        in
        let fan = Ormp_trace.Batch.fanout [ wb; Ormp_check.Sanitizer.batch san ] in
        let result = Ormp_vm.Runner.run_batched ~config program fan in
        (fin ~elapsed:result.Ormp_vm.Runner.elapsed, Some result.Ormp_vm.Runner.table)
      end
    in
    (match save with
    | Some path ->
      Ormp_persist.Whomp_io.save path p;
      Printf.printf "profile written to %s\n" path
    | None -> ());
    let r = Ormp_whomp.Rasg.profile ~config program in
    Printf.printf "collected accesses : %d (+%d wild)\n" p.Ormp_whomp.Whomp.collected
      p.Ormp_whomp.Whomp.wild;
    Printf.printf "groups             : %d\n" (List.length p.Ormp_whomp.Whomp.groups);
    Printf.printf "objects            : %d\n" (List.length p.Ormp_whomp.Whomp.lifetimes);
    List.iter
      (fun (dim, g) ->
        Printf.printf "OMSG %-7s grammar: %6d symbols, %6d rules, %7d bytes\n" dim
          (Ormp_sequitur.Sequitur.grammar_size g)
          (Ormp_sequitur.Sequitur.rule_count g)
          (Ormp_sequitur.Sequitur.byte_size g))
      p.Ormp_whomp.Whomp.dims;
    let ob = Ormp_whomp.Whomp.omsg_bytes p and rb = Ormp_whomp.Rasg.bytes r in
    Printf.printf "OMSG total         : %d bytes\n" ob;
    Printf.printf "RASG baseline      : %d bytes\n" rb;
    Printf.printf "compression        : %.1f%% (RASG as base)\n"
      (100.0 *. float_of_int (rb - ob) /. float_of_int rb);
    (match show_grammar with
    | None -> ()
    | Some dim -> (
      match List.assoc_opt dim p.Ormp_whomp.Whomp.dims with
      | Some g -> Format.printf "@.%s grammar:@.%a" dim Ormp_sequitur.Sequitur.pp g
      | None -> Printf.eprintf "no dimension %S (instr/group/object/offset)\n" dim));
      san_table
    in
    match san_table with
    | None -> ()
    | Some table -> emit_sanitizer_report san ~table ~subject:workload
  in
  let show_grammar =
    Arg.(
      value
      & opt (some string) None
      & info [ "show-grammar" ] ~docv:"DIM"
          ~doc:"Print the Sequitur grammar of one dimension (instr, group, object or offset).")
  in
  let save =
    Arg.(
      value
      & opt (some string) None
      & info [ "save"; "o" ] ~docv:"FILE" ~doc:"Write the profile to FILE (s-expression).")
  in
  Cmd.v
    (Cmd.info "whomp" ~doc:"Lossless object-relative profile (OMSG) vs the RASG baseline")
    Term.(
      const run $ workload_arg $ seed_arg $ policy_arg $ show_grammar $ save
      $ sanitize_arg $ jobs_arg $ telemetry_arg $ quiet_arg)

(* --- leap ----------------------------------------------------------- *)

let leap_cmd =
  let run workload seed policy budget show_deps show_strides save sanitize jobs telemetry
      quiet =
    apply_quiet quiet;
    let jobs = resolve_jobs jobs in
    let program = find_program workload in
    let config = config_of ~seed ~policy in
    let san = Ormp_check.Sanitizer.create () in
    let san_table =
      with_telemetry telemetry ~name:("leap:" ^ workload) @@ fun () ->
      let p, san_table =
        if not sanitize then
          ( (if jobs > 1 then Ormp_leap.Par_leap.profile ~config ~budget ~jobs program
             else Ormp_leap.Leap.profile ~config ~budget program),
            None )
        else if jobs > 1 then begin
          let t =
            Ormp_leap.Par_leap.create ~budget ~jobs ~site_name:(Printf.sprintf "site%d") ()
          in
          Fun.protect
            ~finally:(fun () -> try Ormp_leap.Par_leap.shutdown t with _ -> ())
            (fun () ->
              let fan =
                Ormp_trace.Batch.fanout
                  [ Ormp_leap.Par_leap.batch t; Ormp_check.Sanitizer.batch san ]
              in
              let result = Ormp_vm.Runner.run_batched ~config program fan in
              ( Ormp_leap.Par_leap.finalize t ~elapsed:result.Ormp_vm.Runner.elapsed,
                Some result.Ormp_vm.Runner.table ))
        end
      else begin
        let lb, fin =
          Ormp_leap.Leap.sink_batched ~budget ~site_name:(Printf.sprintf "site%d") ()
        in
        let fan = Ormp_trace.Batch.fanout [ lb; Ormp_check.Sanitizer.batch san ] in
        let result = Ormp_vm.Runner.run_batched ~config program fan in
        (fin ~elapsed:result.Ormp_vm.Runner.elapsed, Some result.Ormp_vm.Runner.table)
      end
    in
    (match save with
    | Some path ->
      Ormp_persist.Leap_io.save path p;
      Printf.printf "profile written to %s\n" path
    | None -> ());
    Printf.printf "collected accesses    : %d (+%d wild)\n" p.Ormp_leap.Leap.collected
      p.Ormp_leap.Leap.wild;
    Printf.printf "streams (instr,group) : %d\n" (List.length p.Ormp_leap.Leap.streams);
    Printf.printf "profile size          : %d bytes\n" (Ormp_leap.Leap.byte_size p);
    Printf.printf "compression ratio     : %s\n"
      (Ormp_util.Ascii.ratio (Ormp_leap.Leap.compression_ratio p));
    Printf.printf "accesses captured     : %s\n"
      (Ormp_util.Ascii.percent (Ormp_leap.Leap.accesses_captured p));
    Printf.printf "instructions captured : %s\n"
      (Ormp_util.Ascii.percent (Ormp_leap.Leap.instructions_captured p));
    if show_deps then begin
      print_endline "\nmemory dependence frequencies (LEAP post-process):";
      List.iter
        (fun d -> Format.printf "  %a@." Ormp_baselines.Dep_types.pp d)
        (Ormp_leap.Mdf.compute p)
    end;
    if show_strides then begin
      print_endline "\nstrongly-strided instructions (LEAP post-process):";
      List.iter
        (fun (i, s) -> Printf.printf "  instr %d: stride %d\n" i s)
        (Ormp_leap.Strides.strongly_strided p)
    end;
      san_table
    in
    match san_table with
    | None -> ()
    | Some table -> emit_sanitizer_report san ~table ~subject:workload
  in
  let budget =
    Arg.(
      value
      & opt int Ormp_lmad.Compressor.default_budget
      & info [ "budget" ] ~docv:"N" ~doc:"Maximum LMADs per (instruction, group) stream.")
  in
  let show_deps = Arg.(value & flag & info [ "deps" ] ~doc:"Run the dependence post-processor.") in
  let show_strides =
    Arg.(value & flag & info [ "strides" ] ~doc:"Run the stride post-processor.")
  in
  let save =
    Arg.(
      value
      & opt (some string) None
      & info [ "save"; "o" ] ~docv:"FILE" ~doc:"Write the profile to FILE (s-expression).")
  in
  Cmd.v
    (Cmd.info "leap" ~doc:"Lossy object-relative LMAD profile and its post-processors")
    Term.(
      const run $ workload_arg $ seed_arg $ policy_arg $ budget $ show_deps $ show_strides
      $ save $ sanitize_arg $ jobs_arg $ telemetry_arg $ quiet_arg)

(* --- compare -------------------------------------------------------- *)

let compare_cmd =
  let run workload seed policy window =
    let program = find_program workload in
    let config = config_of ~seed ~policy in
    let leap_sink, leap_fin = Ormp_leap.Leap.sink ~site_name:(Printf.sprintf "site%d") () in
    let truth = Ormp_baselines.Lossless_dep.create () in
    let connors = Ormp_baselines.Connors.create ~window () in
    let result =
      Ormp_vm.Runner.run ~config program
        (Ormp_trace.Sink.fanout
           [
             leap_sink;
             Ormp_baselines.Lossless_dep.sink truth;
             Ormp_baselines.Connors.sink connors;
           ])
    in
    let table = result.Ormp_vm.Runner.table in
    let td = Ormp_baselines.Lossless_dep.deps truth in
    let ld = Ormp_leap.Mdf.compute (leap_fin ~elapsed:result.Ormp_vm.Runner.elapsed) in
    let cd = Ormp_baselines.Connors.deps connors in
    let name i = (Ormp_trace.Instr.info table i).Ormp_trace.Instr.name in
    let rows =
      List.map
        (fun (s, l) ->
          let f deps = Ormp_baselines.Dep_types.find deps ~store:s ~load:l in
          [
            name s;
            name l;
            Ormp_util.Ascii.percent (f td);
            Ormp_util.Ascii.percent (f ld);
            Ormp_util.Ascii.percent (f cd);
          ])
        (Ormp_baselines.Dep_types.pairs [ td; ld; cd ])
    in
    print_endline
      (Ormp_util.Ascii.table ~header:[ "store"; "load"; "lossless"; "LEAP"; "Connors" ] ~rows)
  in
  let window =
    Arg.(
      value
      & opt int Ormp_baselines.Connors.default_window
      & info [ "window" ] ~docv:"N" ~doc:"Connors history-window size.")
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Dependence-frequency table: lossless vs LEAP vs Connors")
    Term.(const run $ workload_arg $ seed_arg $ policy_arg $ window)

(* --- record / replay -------------------------------------------------- *)

let record_cmd =
  let run workload seed policy out =
    let program = find_program workload in
    let config = config_of ~seed ~policy in
    let oc = open_out out in
    let sink = Ormp_trace.Trace_file.writer oc in
    let counter = Ormp_trace.Sink.counter () in
    ignore
      (Ormp_vm.Runner.run ~config program
         (Ormp_trace.Sink.fanout [ sink; Ormp_trace.Sink.counter_sink counter ]));
    close_out oc;
    Printf.printf "recorded %d accesses (+%d allocs, %d frees) to %s\n"
      (Ormp_trace.Sink.accesses counter) counter.Ormp_trace.Sink.allocs
      counter.Ormp_trace.Sink.frees out
  in
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Trace file to write.")
  in
  Cmd.v
    (Cmd.info "record" ~doc:"Record a workload's raw probe-event trace to a file")
    Term.(const run $ workload_arg $ seed_arg $ policy_arg $ out)

let replay_cmd =
  let run path profiler quiet =
    apply_quiet quiet;
    let fail msg = Exit_codes.findingsf "%s" msg in
    let replay_into sink finish =
      match Ormp_trace.Trace_file.replay path sink with
      | Ok n ->
        Printf.printf "replayed %d events from %s\n" n path;
        finish ()
      | Error msg -> fail msg
    in
    match profiler with
    | "whomp" ->
      let sink, fin = Ormp_whomp.Whomp.sink ~site_name:(Printf.sprintf "site%d") () in
      replay_into sink (fun () ->
          let p = fin ~elapsed:0.0 in
          Printf.printf "WHOMP: %d accesses collected, OMSG %d bytes\n"
            p.Ormp_whomp.Whomp.collected (Ormp_whomp.Whomp.omsg_bytes p))
    | "leap" ->
      let sink, fin = Ormp_leap.Leap.sink ~site_name:(Printf.sprintf "site%d") () in
      replay_into sink (fun () ->
          let p = fin ~elapsed:0.0 in
          Printf.printf "LEAP: %d accesses, %d bytes, %s captured\n" p.Ormp_leap.Leap.collected
            (Ormp_leap.Leap.byte_size p)
            (Ormp_util.Ascii.percent (Ormp_leap.Leap.accesses_captured p)))
    | "lossless" ->
      let t = Ormp_baselines.Lossless_dep.create () in
      replay_into (Ormp_baselines.Lossless_dep.sink t) (fun () ->
          List.iter
            (fun d -> Format.printf "  %a@." Ormp_baselines.Dep_types.pp d)
            (Ormp_baselines.Lossless_dep.deps t))
    | "connors" ->
      let t = Ormp_baselines.Connors.create () in
      replay_into (Ormp_baselines.Connors.sink t) (fun () ->
          List.iter
            (fun d -> Format.printf "  %a@." Ormp_baselines.Dep_types.pp d)
            (Ormp_baselines.Connors.deps t))
    | other ->
      (* A bad flag value is an argument error, not a replay failure. *)
      Exit_codes.usagef "unknown profiler %S (whomp/leap/lossless/connors)" other
  in
  let path =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"A trace recorded with $(b,ormp record).")
  in
  let profiler =
    Arg.(
      value
      & opt string "leap"
      & info [ "profiler"; "p" ] ~docv:"NAME"
          ~doc:"Profiler to replay into: whomp, leap, lossless or connors.")
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"Replay a recorded trace through a profiler")
    Term.(const run $ path $ profiler $ quiet_arg)

(* --- post ----------------------------------------------------------- *)

let post_cmd =
  let run path show_deps show_strides =
    match Ormp_persist.Leap_io.load path with
    | Error msg -> Exit_codes.findingsf "cannot load %s: %s" path msg
    | Ok p ->
      Printf.printf "loaded LEAP profile: %d collected accesses, %d streams\n"
        p.Ormp_leap.Leap.collected
        (List.length p.Ormp_leap.Leap.streams);
      if show_deps || not show_strides then begin
        print_endline "\nmemory dependence frequencies:";
        List.iter
          (fun d -> Format.printf "  %a@." Ormp_baselines.Dep_types.pp d)
          (Ormp_leap.Mdf.compute p)
      end;
      if show_strides || not show_deps then begin
        print_endline "\nstrongly-strided instructions:";
        List.iter
          (fun (i, st) -> Printf.printf "  instr %d: stride %d\n" i st)
          (Ormp_leap.Strides.strongly_strided p)
      end
  in
  let path =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"A LEAP profile saved with $(b,ormp leap --save).")
  in
  let show_deps = Arg.(value & flag & info [ "deps" ] ~doc:"Only the dependence post-processor.") in
  let show_strides =
    Arg.(value & flag & info [ "strides" ] ~doc:"Only the stride post-processor.")
  in
  Cmd.v
    (Cmd.info "post" ~doc:"Run the LEAP post-processors on a saved profile")
    Term.(const run $ path $ show_deps $ show_strides)

(* --- check ----------------------------------------------------------- *)

let check_cmd =
  let run workload profile all seed policy faults leaks slack sexp =
    if slack < 0 then Exit_codes.usagef "--slack must be non-negative (got %d)" slack;
    let check_workload name =
      let config = config_of ~seed ~policy in
      let program = find_program name in
      let program = if faults then Ormp_workloads.Faults.inject program else program in
      let r = Ormp_check.Sanitizer.run ~config ~slack ~leaks program in
      if sexp then print_endline (Ormp_util.Sexp.to_string (Ormp_check.Report.to_sexp r))
      else Format.printf "%a" Ormp_check.Report.render r;
      Ormp_check.Report.clean r
    in
    let check_profile path =
      match Ormp_persist.Whomp_io.load path with
      | Ok p -> (
        match Ormp_check.Verify.whomp_profile p with
        | Ok () ->
          Printf.printf "%s: WHOMP profile OK (%d accesses, %d objects)\n" path
            p.Ormp_whomp.Whomp.collected
            (List.length p.Ormp_whomp.Whomp.lifetimes);
          true
        | Error e ->
          Printf.eprintf "%s: invalid WHOMP profile: %s\n" path e;
          false)
      | Error whomp_err -> (
        match Ormp_persist.Leap_io.load path with
        | Ok p -> (
          match Ormp_check.Verify.leap_profile p with
          | Ok () ->
            Printf.printf "%s: LEAP profile OK (%d accesses, %d streams)\n" path
              p.Ormp_leap.Leap.collected
              (List.length p.Ormp_leap.Leap.streams);
            true
          | Error e ->
            Printf.eprintf "%s: invalid LEAP profile: %s\n" path e;
            false)
        | Error leap_err ->
          Printf.eprintf "%s: not a loadable profile\n  as WHOMP: %s\n  as LEAP: %s\n"
            path whomp_err leap_err;
          false)
    in
    let ok =
      match (workload, profile, all) with
      | Some w, None, false -> check_workload w
      | None, Some f, false -> check_profile f
      | None, None, true ->
        let names =
          List.map (fun e -> e.Registry.name) Registry.spec
          @ List.map fst Ormp_workloads.Micro.all
        in
        List.fold_left (fun acc n -> check_workload n && acc) true names
      | None, None, false ->
        Exit_codes.usagef "one of --workload, --profile or --all is required"
      | _ -> Exit_codes.usagef "--workload, --profile and --all are mutually exclusive"
    in
    if not ok then Exit_codes.exit_findings ()
  in
  let workload =
    Arg.(
      value
      & opt (some string) None
      & info [ "workload"; "w" ] ~docv:"WORKLOAD"
          ~doc:"Sanitize one instrumented run of this workload.")
  in
  let profile =
    Arg.(
      value
      & opt (some string) None
      & info [ "profile"; "p" ] ~docv:"FILE"
          ~doc:"Verify the structural invariants of a saved WHOMP or LEAP profile.")
  in
  let all =
    Arg.(value & flag & info [ "all" ] ~doc:"Sanitize every registered workload.")
  in
  let faults =
    Arg.(
      value & flag
      & info [ "faults" ]
          ~doc:
            "Plant one defect of each class (use-after-free, out-of-bounds, double-free, \
             leak, wild access) after the workload body — a sanitizer self-test; the run \
             is expected to be dirty.")
  in
  let leaks =
    Arg.(
      value & flag
      & info [ "leaks" ] ~doc:"Also report never-freed objects, one note per allocation site.")
  in
  let slack =
    Arg.(
      value
      & opt int Ormp_check.Sanitizer.default_slack
      & info [ "slack" ] ~docv:"BYTES"
          ~doc:
            "How far outside a live object an access may land and still be classified as \
             out-of-bounds against it rather than as unmapped.")
  in
  let sexp =
    Arg.(value & flag & info [ "sexp" ] ~doc:"Machine-readable s-expression report.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Sanitize a workload run or verify a saved profile's invariants")
    Term.(
      const run $ workload $ profile $ all $ seed_arg $ policy_arg $ faults $ leaks $ slack
      $ sexp)

(* --- lint ------------------------------------------------------------- *)

let lint_cmd =
  let run dirs sexp =
    let dirs = match dirs with [] -> [ "lib" ] | ds -> ds in
    List.iter
      (fun d ->
        if not (Sys.file_exists d && Sys.is_directory d) then
          Exit_codes.usagef "lint: no such directory: %s" d)
      dirs;
    let r = Ormp_check.Lint.scan dirs in
    if sexp then print_endline (Ormp_util.Sexp.to_string (Ormp_check.Lint.to_sexp r))
    else Format.printf "%a" Ormp_check.Lint.render r;
    if not (Ormp_check.Lint.clean r) then Exit_codes.exit_findings ()
  in
  let dirs =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"DIR" ~doc:"Directories to scan recursively (default: lib).")
  in
  let sexp =
    Arg.(value & flag & info [ "sexp" ] ~doc:"Machine-readable s-expression report.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static source pass enforcing the repo's concurrency and output conventions \
          (raw atomics outside the transport seam, Hashtbl iteration on output paths, \
          allocation in hot-path files, stderr writes bypassing the logger)")
    Term.(const run $ dirs $ sexp)

(* --- modelcheck ------------------------------------------------------- *)

let modelcheck_cmd =
  let module L = Ormp_modelcheck.Litmus in
  let module Mc = Ormp_modelcheck.Mc in
  let run litmus budget sexp =
    let cases =
      match litmus with
      | None -> L.cases
      | Some n -> (
        match L.find n with
        | Some c -> [ c ]
        | None ->
          Printf.eprintf "modelcheck: unknown litmus %S; available:\n" n;
          List.iter (fun (c : L.case) -> Printf.eprintf "  %s\n" c.name) L.cases;
          Exit_codes.exit_usage ())
    in
    let results = List.map (L.run_case ?max_interleavings:budget) cases in
    let failed = List.filter (fun (r : L.result) -> not r.ok) results in
    if sexp then begin
      let module S = Ormp_util.Sexp in
      let case_sexp (r : L.result) =
        let s = r.stats in
        S.field "case"
          ([
             S.field "name" [ S.atom r.case.name ];
             S.field "ok" [ S.atom (if r.ok then "true" else "false") ];
             S.field "expect-violation"
               [ S.atom (if r.case.expect_violation then "true" else "false") ];
             S.field "exhaustive" [ S.atom (if r.case.exhaustive then "true" else "false") ];
             S.field "interleavings" [ S.int s.Mc.interleavings ];
             S.field "steps" [ S.int s.Mc.steps_executed ];
             S.field "max-depth" [ S.int s.Mc.max_depth ];
             S.field "budget-exhausted"
               [ S.atom (if s.Mc.budget_exhausted then "true" else "false") ];
           ]
          @
          match s.Mc.violation with
          | None -> []
          | Some m ->
            [
              S.field "violation" [ S.atom m ];
              S.field "trace" (List.map S.atom s.Mc.trace);
            ])
      in
      print_endline
        (S.to_string
           (S.field "ormp-modelcheck-report"
              (S.field "cases" [ S.int (List.length results) ]
              :: S.field "failed" [ S.int (List.length failed) ]
              :: List.map case_sexp results)))
    end
    else begin
      Printf.printf "ormp-modelcheck: %d litmus case(s), %d failure(s)\n" (List.length results)
        (List.length failed);
      List.iter
        (fun (r : L.result) ->
          let s = r.stats in
          let verdict = if r.ok then "PASS" else "FAIL" in
          let outcome =
            match s.Mc.violation with
            | Some _ when r.case.expect_violation ->
              Printf.sprintf "violation found as expected (%d interleavings)"
                s.Mc.interleavings
            | Some m -> Printf.sprintf "VIOLATION: %s" m
            | None ->
              Printf.sprintf "%s, %d interleavings, %d steps, depth %d"
                (if s.Mc.budget_exhausted then "bounded (budget exhausted)" else "exhaustive")
                s.Mc.interleavings s.Mc.steps_executed s.Mc.max_depth
          in
          Printf.printf "  %s %-30s %s\n" verdict r.case.name outcome;
          (* The schedule is the actual diagnostic: print it whenever a
             violation was found, expected (the seeded race) or not. *)
          if s.Mc.violation <> None then begin
            (match s.Mc.violation with
            | Some m when r.case.expect_violation -> Printf.printf "       %s\n" m
            | _ -> ());
            List.iter (fun l -> Printf.printf "       | %s\n" l) s.Mc.trace
          end)
        results
    end;
    if failed <> [] then Exit_codes.exit_findings ()
  in
  let litmus =
    Arg.(
      value
      & opt (some string) None
      & info [ "litmus"; "l" ] ~docv:"NAME" ~doc:"Run a single litmus case by name.")
  in
  let budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget" ] ~docv:"N"
          ~doc:
            "Cap the interleaving budget per case from above (never raises a case's own \
             budget).")
  in
  let sexp =
    Arg.(value & flag & info [ "sexp" ] ~doc:"Machine-readable s-expression report.")
  in
  Cmd.v
    (Cmd.info "modelcheck"
       ~doc:
         "Exhaustively explore the transport litmus suite (SPSC ring, worker shutdown and \
          drain barriers, pool slot pinning) under the DPOR model checker")
    Term.(const run $ litmus $ budget $ sexp)

(* --- analyze ---------------------------------------------------------- *)

let analyze_cmd =
  let run workload seed policy hot cluster phases =
    let program = find_program workload in
    let config = config_of ~seed ~policy in
    let everything = not (hot || cluster || phases) in
    let c = Ormp_analysis.Collect.run ~config program in
    if hot || everything then begin
      let p = Ormp_whomp.Whomp.profile ~config program in
      print_endline "hot data streams (per OMSG dimension):";
      List.iter
        (fun (dim, g) ->
          Printf.printf "  [%s]\n" dim;
          List.iter
            (fun h -> Format.printf "    %a@." Ormp_analysis.Hot_streams.pp h)
            (Ormp_analysis.Hot_streams.of_grammar ~top:3 g))
        p.Ormp_whomp.Whomp.dims
    end;
    if cluster || everything then begin
      print_endline "\nobject clustering (per multi-object group):";
      List.iter
        (fun (g : Ormp_core.Omc.group_info) ->
          if g.Ormp_core.Omc.population > 1 then begin
            let t = Ormp_analysis.Clustering.analyze c ~group:g.Ormp_core.Omc.gid in
            let before =
              Ormp_analysis.Clustering.replay_miss_rate c
                (Ormp_analysis.Clustering.sequential_layout c)
            in
            let after =
              Ormp_analysis.Clustering.replay_miss_rate c
                (Ormp_analysis.Clustering.clustered_layout c [ t ])
            in
            Printf.printf "  group %d (%s, %d objects): L1d miss %s -> %s\n"
              g.Ormp_core.Omc.gid g.Ormp_core.Omc.label g.Ormp_core.Omc.population
              (Ormp_util.Ascii.percent before) (Ormp_util.Ascii.percent after)
          end)
        c.Ormp_analysis.Collect.groups
    end;
    if phases || everything then begin
      print_endline "\nphases (group-mix signatures):";
      List.iter
        (fun ph -> Format.printf "  %a@." Ormp_analysis.Phase.pp ph)
        (Ormp_analysis.Phase.detect c.Ormp_analysis.Collect.tuples)
    end
  in
  let hot = Arg.(value & flag & info [ "hot" ] ~doc:"Hot data streams from the OMSG.") in
  let cluster =
    Arg.(value & flag & info [ "cluster" ] ~doc:"Object clustering with cache-simulated payoff.")
  in
  let phases = Arg.(value & flag & info [ "phases" ] ~doc:"Phase detection.") in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Run the optimization analyses on a workload's profile")
    Term.(const run $ workload_arg $ seed_arg $ policy_arg $ hot $ cluster $ phases)

(* --- session ---------------------------------------------------------- *)

module Session = Ormp_session.Session
module Suite = Ormp_session.Suite
module Supervise = Ormp_session.Supervise
module Snapshot = Ormp_session.Snapshot
module Fio = Ormp_workloads.Faults.Io

(* Injected I/O faults from `ormp session run`: deliberately killing the
   process at checkpoint N is how the crash-smoke alias (and any manual
   durability experiment) produces a half-finished session to resume. *)
let io_plan ~torn_write ~no_space ~crash_at =
  match (torn_write, no_space, crash_at) with
  | None, None, None -> None
  | _ -> Some (Fio.create { Fio.torn_write; no_space; kill_at_checkpoint = crash_at })

(* Exit 9 distinguishes "killed by the injected fault, session is
   resumable" from real argument (2) or runtime (1) errors. *)
let exit_killed f =
  try f ()
  with Fio.Killed n ->
    Printf.eprintf
      "killed by injected fault at checkpoint %d (journal is durable; run `ormp session resume`)\n"
      n;
    Exit_codes.exit_injected_kill ()

let nonneg name v =
  if v < 0 then Exit_codes.usagef "--%s must be non-negative (got %d)" name v

let print_outcome (o : Session.outcome) =
  Printf.printf "session %s: workload %s complete\n" o.Session.oc_dir o.Session.oc_workload;
  Printf.printf "  events      : %d (%d collected, %d wild)\n" o.Session.oc_position
    o.Session.oc_collected o.Session.oc_wild;
  Printf.printf "  checkpoints : %d written\n" o.Session.oc_checkpoints;
  (match o.Session.oc_resumed_from with
  | Some p ->
    Printf.printf "  resumed     : from event %d, %d journal events replayed\n" p
      o.Session.oc_replayed
  | None -> ());
  if o.Session.oc_rotations > 0 then
    Printf.printf "  rotations   : %d (%d sealed epoch files)\n" o.Session.oc_rotations
      (List.length o.Session.oc_epochs);
  List.iter
    (fun (d : Snapshot.degradation) ->
      Printf.printf "  degraded    : %s at event %d (%s)\n" d.Snapshot.dg_kind
        d.Snapshot.dg_position d.Snapshot.dg_detail)
    o.Session.oc_degradations;
  Printf.printf "  elapsed     : %.3fs\n" o.Session.oc_elapsed

let session_dir_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "dir"; "d" ] ~docv:"DIR" ~doc:"Session directory (journal, snapshots, profiles).")

let session_run_cmd =
  let run workload dir seed policy checkpoint_every watch_every grammar_budget max_streams
      leap_budget keep heartbeat_every jobs torn_write no_space crash_at telemetry quiet =
    apply_quiet quiet;
    let jobs = resolve_jobs jobs in
    nonneg "checkpoint-every" checkpoint_every;
    nonneg "watch-every" watch_every;
    nonneg "grammar-budget" grammar_budget;
    nonneg "max-streams" max_streams;
    nonneg "heartbeat-every" heartbeat_every;
    if keep < 1 then Exit_codes.usagef "--keep must be at least 1 (got %d)" keep;
    let config = config_of ~seed ~policy in
    let options =
      {
        Session.checkpoint_every;
        watch_every;
        grammar_budget;
        max_streams;
        leap_budget;
        keep;
      }
    in
    let io = io_plan ~torn_write ~no_space ~crash_at in
    exit_killed (fun () ->
        with_telemetry telemetry ~name:("session:" ^ workload) @@ fun () ->
        match Session.run ?io ~heartbeat_every ~jobs ~config ~options ~dir ~workload () with
        | Ok o -> print_outcome o
        | Error msg -> Exit_codes.findingsf "%s" msg)
  in
  let heartbeat_every =
    Arg.(
      value & opt int 0
      & info [ "heartbeat-every" ] ~docv:"N"
          ~doc:
            "Append a progress sample (events/sec, live state sizes, journal footprint) \
             to the session's heartbeat file every N raw events (0 disables; watch with \
             $(b,ormp session status --watch)).")
  in
  let checkpoint_every =
    Arg.(
      value & opt int 4096
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:"Snapshot the profiler state every N raw events (0 disables checkpoints).")
  in
  let watch_every =
    Arg.(
      value & opt int 0
      & info [ "watch-every" ] ~docv:"N"
          ~doc:"Poll the memory-budget watchdog every N raw events (0 disables it).")
  in
  let grammar_budget =
    Arg.(
      value & opt int 0
      & info [ "grammar-budget" ] ~docv:"SYMBOLS"
          ~doc:
            "Total live Sequitur symbols (four OMSG dimensions plus RASG) above which the \
             watchdog rotates the grammars into sealed on-disk epochs (0 = unlimited).")
  in
  let max_streams =
    Arg.(
      value & opt int 0
      & info [ "max-streams" ] ~docv:"N"
          ~doc:"Cap on LEAP (instruction, group) streams; extra streams are dropped and \
                counted (0 = unlimited).")
  in
  let leap_budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "leap-budget" ] ~docv:"N" ~doc:"Per-stream LMAD budget override.")
  in
  let keep =
    Arg.(
      value & opt int 2
      & info [ "keep" ] ~docv:"N" ~doc:"Snapshots retained; older ones are pruned.")
  in
  let torn_write =
    Arg.(
      value
      & opt (some int) None
      & info [ "torn-write" ] ~docv:"N"
          ~doc:"Fault injection: tear the Nth journal/snapshot write in half.")
  in
  let no_space =
    Arg.(
      value
      & opt (some int) None
      & info [ "no-space" ] ~docv:"N" ~doc:"Fault injection: fail the Nth write with ENOSPC.")
  in
  let crash_at =
    Arg.(
      value
      & opt (some int) None
      & info [ "crash-at-checkpoint" ] ~docv:"N"
          ~doc:
            "Fault injection: kill the process (exit 9) right after the Nth snapshot is \
             written, leaving a resumable session behind.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Start a crash-safe profiling session (journal + checkpoints)")
    Term.(
      const run $ workload_arg $ session_dir_arg $ seed_arg $ policy_arg $ checkpoint_every
      $ watch_every $ grammar_budget $ max_streams $ leap_budget $ keep $ heartbeat_every
      $ jobs_arg $ torn_write $ no_space $ crash_at $ telemetry_arg $ quiet_arg)

let session_resume_cmd =
  let run dir heartbeat_every jobs torn_write no_space crash_at telemetry quiet =
    apply_quiet quiet;
    let jobs = resolve_jobs jobs in
    nonneg "heartbeat-every" heartbeat_every;
    let io = io_plan ~torn_write ~no_space ~crash_at in
    exit_killed (fun () ->
        with_telemetry telemetry ~name:"session:resume" @@ fun () ->
        match Session.resume ?io ~heartbeat_every ~jobs ~dir () with
        | Ok o -> print_outcome o
        | Error msg -> Exit_codes.findingsf "%s" msg)
  in
  let heartbeat_every =
    Arg.(
      value & opt int 0
      & info [ "heartbeat-every" ] ~docv:"N"
          ~doc:
            "Append a progress sample to the session's heartbeat file every N raw \
             events (0 disables). The cadence is per-process: a resume may pick a \
             different one than the original run.")
  in
  let torn_write =
    Arg.(
      value
      & opt (some int) None
      & info [ "torn-write" ] ~docv:"N" ~doc:"Fault injection: tear the Nth write in half.")
  in
  let no_space =
    Arg.(
      value
      & opt (some int) None
      & info [ "no-space" ] ~docv:"N" ~doc:"Fault injection: fail the Nth write with ENOSPC.")
  in
  let crash_at =
    Arg.(
      value
      & opt (some int) None
      & info [ "crash-at-checkpoint" ] ~docv:"N"
          ~doc:"Fault injection: kill the process again at the Nth new snapshot.")
  in
  Cmd.v
    (Cmd.info "resume"
       ~doc:"Resume a killed session from its newest valid snapshot and journal tail")
    Term.(
      const run $ session_dir_arg $ heartbeat_every $ jobs_arg $ torn_write $ no_space
      $ crash_at $ telemetry_arg $ quiet_arg)

let print_heartbeat_sample (s : Ormp_telemetry.Heartbeat.sample) =
  Printf.printf "  %8.2fs  event %-9d %9.0f ev/s  objs %-6d syms %-6d streams %-5d ckpt @%-9d%s\n%!"
    s.Ormp_telemetry.Heartbeat.wall_s s.Ormp_telemetry.Heartbeat.position
    s.Ormp_telemetry.Heartbeat.events_per_sec s.Ormp_telemetry.Heartbeat.live_objects
    s.Ormp_telemetry.Heartbeat.grammar_symbols s.Ormp_telemetry.Heartbeat.leap_streams
    s.Ormp_telemetry.Heartbeat.last_checkpoint
    (match s.Ormp_telemetry.Heartbeat.degraded with
    | [] -> ""
    | ds -> " degraded:" ^ String.concat "," ds)

let session_status_cmd =
  let print_status (st : Session.status_info) =
    Printf.printf "workload : %s\n" st.Session.st_workload;
    (match st.Session.st_snapshot with
    | Some (k, pos) -> Printf.printf "snapshot : #%d at event %d\n" k pos
    | None -> print_endline "snapshot : none");
    (match st.Session.st_journal with
    | Some n -> Printf.printf "journal  : %d events\n" n
    | None -> print_endline "journal  : none");
    print_endline
      (if st.Session.st_complete then "complete : yes (profiles and report written)"
       else "complete : no (resumable)")
  in
  let run dir watch interval =
    if interval <= 0.0 then
      Exit_codes.usagef "--interval must be positive (got %g)" interval;
    match Session.status ~dir with
    | Error msg -> Exit_codes.findingsf "%s" msg
    | Ok st ->
      print_status st;
      if watch then begin
        (* Tail the heartbeat file: print samples as the running process
           appends them, stop once the session's final report exists (or
           immediately after draining, if it is already complete). *)
        let hb_path = Filename.concat dir Session.heartbeat_file in
        let seen = ref 0 in
        let drain () =
          let samples = Ormp_telemetry.Heartbeat.load hb_path in
          List.iteri (fun i s -> if i >= !seen then print_heartbeat_sample s) samples;
          seen := max !seen (List.length samples)
        in
        let complete () =
          match Session.status ~dir with
          | Ok st -> st.Session.st_complete
          | Error _ -> false
        in
        let rec loop () =
          drain ();
          if not (complete ()) then begin
            Unix.sleepf interval;
            loop ()
          end
        in
        if not st.Session.st_complete then begin
          loop ();
          print_endline "complete : yes (profiles and report written)"
        end
        else drain ()
      end
  in
  let watch =
    Arg.(
      value & flag
      & info [ "watch" ]
          ~doc:
            "Tail the session's heartbeat file, printing each progress sample, until \
             the final report is written. A session must be started with \
             $(b,--heartbeat-every) for samples to appear.")
  in
  let interval =
    Arg.(
      value & opt float 1.0
      & info [ "interval" ] ~docv:"SECONDS" ~doc:"Polling interval for $(b,--watch).")
  in
  Cmd.v
    (Cmd.info "status" ~doc:"Inspect a session directory: newest snapshot, journal, completion")
    Term.(const run $ session_dir_arg $ watch $ interval)

let session_suite_cmd =
  let run seed policy timeout_s retries backoff_s faults jobs out_dir report telemetry
      quiet =
    apply_quiet quiet;
    let jobs = resolve_jobs jobs in
    if retries < 0 then Exit_codes.usagef "--retries must be non-negative (got %d)" retries;
    let config = config_of ~seed ~policy in
    let r =
      with_telemetry telemetry ~name:"session:suite" @@ fun () ->
      Suite.run ?timeout_s ~retries ?backoff_s ~faults ~config ~jobs ?out_dir ()
    in
    List.iter
      (fun (e : Suite.entry) ->
        let tag =
          match e.Suite.en_fault with
          | Some f -> Printf.sprintf "%s (+%s)" e.Suite.en_workload (Suite.fault_name f)
          | None -> e.Suite.en_workload
        in
        match e.Suite.en_outcome with
        | Supervise.Completed s ->
          Printf.printf "  %-28s ok      %8d accesses, OMSG %d symbols, %.2fs\n" tag
            s.Suite.sc_collected s.Suite.sc_omsg s.Suite.sc_elapsed
        | Supervise.Failed f ->
          Printf.printf "  %-28s FAILED  after %d attempts: %s\n" tag f.Supervise.attempts
            f.Supervise.error
        | Supervise.Timed_out { attempts; timeout_s } ->
          Printf.printf "  %-28s HUNG    cancelled after %.1fs (attempt %d)\n" tag timeout_s
            attempts)
      r.Suite.rp_entries;
    Printf.printf "suite: %d completed, %d failed, %d timed out (%.1fs)\n" r.Suite.rp_completed
      r.Suite.rp_failed r.Suite.rp_timed_out r.Suite.rp_elapsed;
    match report with
    | Some path ->
      Suite.save_report path r;
      Printf.printf "report written to %s\n" path
    | None -> ()
  in
  let timeout_s =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Per-workload deadline; a hang is cooperatively cancelled past it.")
  in
  let retries =
    Arg.(
      value & opt int 1
      & info [ "retries" ] ~docv:"N" ~doc:"Crash retries per workload (with linear backoff).")
  in
  let backoff_s =
    Arg.(
      value
      & opt (some float) None
      & info [ "backoff" ] ~docv:"SECONDS" ~doc:"Base retry backoff (grows linearly).")
  in
  let faults =
    let fault = Arg.enum [ ("crash", Suite.Crash); ("hang", Suite.Hang) ] in
    Arg.(
      value
      & opt_all (pair ~sep:'=' string fault) []
      & info [ "fault" ] ~docv:"WORKLOAD=crash|hang"
          ~doc:
            "Inject a process-level fault into the named registry workload (repeatable) — \
             validates that the supervisor isolates it from the rest of the suite.")
  in
  let out_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "out-dir" ] ~docv:"DIR"
          ~doc:"Save each completed workload's WHOMP profile as DIR/<name>.whomp.")
  in
  let report =
    Arg.(
      value
      & opt (some string) None
      & info [ "report"; "o" ] ~docv:"FILE"
          ~doc:"Write the structured partial-results report (s-expression) to FILE.")
  in
  Cmd.v
    (Cmd.info "suite"
       ~doc:
         "Profile every registry workload under supervision: per-workload timeouts, crash \
          retries, partial-results report; always exits 0 on workload failures")
    Term.(
      const run $ seed_arg $ policy_arg $ timeout_s $ retries $ backoff_s $ faults
      $ jobs_arg $ out_dir $ report $ telemetry_arg $ quiet_arg)

let session_cmd =
  Cmd.group
    (Cmd.info "session"
       ~doc:"Crash-safe profiling sessions: checkpoint/resume, status, supervised suite")
    [ session_run_cmd; session_resume_cmd; session_status_cmd; session_suite_cmd ]

(* --- serve / client ---------------------------------------------------- *)

module Daemon = Ormp_server.Daemon
module Client = Ormp_server.Client
module Net_fault = Ormp_workloads.Faults.Net

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket"; "s" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let serve_cmd =
  let run socket root jobs max_sessions grammar_budget max_occupancy idle_timeout
      frame_timeout ping_every heartbeat_every retry_after leap_budget max_streams
      stats_file no_stats quiet =
    apply_quiet quiet;
    let jobs = resolve_jobs jobs in
    nonneg "max-sessions" max_sessions;
    nonneg "grammar-budget" grammar_budget;
    nonneg "max-streams" max_streams;
    if max_occupancy <= 0.0 || max_occupancy > 1.0 then
      Exit_codes.usagef "--max-occupancy must be in (0, 1] (got %g)" max_occupancy;
    if idle_timeout <= 0.0 || frame_timeout <= 0.0 || ping_every <= 0.0 then
      Exit_codes.usagef "timeouts must be positive";
    let opts =
      {
        (Daemon.default_options ~socket ~root) with
        Daemon.jobs;
        max_sessions;
        grammar_budget;
        max_occupancy;
        idle_timeout_s = idle_timeout;
        frame_timeout_s = frame_timeout;
        ping_every_s = ping_every;
        heartbeat_every_s = heartbeat_every;
        retry_after_s = retry_after;
        leap_budget;
        max_streams;
        stats = not no_stats;
        stats_file;
      }
    in
    let t =
      try Daemon.create opts
      with Unix.Unix_error (e, _, arg) ->
        Exit_codes.findingsf "cannot listen on %s: %s (%s)" socket (Unix.error_message e)
          arg
    in
    Printf.printf "ormp serve: listening on %s, sessions under %s/sessions\n%!" socket root;
    Daemon.run ~handle_signals:true t;
    Printf.printf "ormp serve: drained, exiting\n%!"
  in
  let root =
    Arg.(
      required
      & opt (some string) None
      & info [ "root"; "d" ] ~docv:"DIR"
          ~doc:"State directory; each session journals under DIR/sessions/<token>/.")
  in
  let max_sessions =
    Arg.(
      value & opt int 64
      & info [ "max-sessions" ] ~docv:"N"
          ~doc:"Shed new sessions past N concurrent ones (0 = unlimited).")
  in
  let grammar_budget =
    Arg.(
      value & opt int 0
      & info [ "grammar-budget" ] ~docv:"SYMBOLS"
          ~doc:
            "Shed new sessions once the live Sequitur symbols across all attached \
             sessions exceed this (0 = unlimited).")
  in
  let max_occupancy =
    Arg.(
      value & opt float 0.95
      & info [ "max-occupancy" ] ~docv:"FRACTION"
          ~doc:"Shed new sessions when compressor-ring occupancy exceeds this.")
  in
  let idle_timeout =
    Arg.(
      value & opt float 30.0
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:"Drop a connection that has sent nothing for this long.")
  in
  let frame_timeout =
    Arg.(
      value & opt float 5.0
      & info [ "frame-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Treat a frame still partially received after this long as a slow-loris and \
             drop the connection (protocol error on that session only).")
  in
  let ping_every =
    Arg.(
      value & opt float 5.0
      & info [ "ping-every" ] ~docv:"SECONDS" ~doc:"Liveness ping cadence on quiet connections.")
  in
  let heartbeat_every =
    Arg.(
      value & opt float 1.0
      & info [ "heartbeat-every" ] ~docv:"SECONDS"
          ~doc:
            "Aggregate heartbeat-sample cadence, appended to DIR/heartbeat (0 disables).")
  in
  let retry_after =
    Arg.(
      value & opt float 0.05
      & info [ "retry-after" ] ~docv:"SECONDS" ~doc:"Retry hint carried by shed responses.")
  in
  let leap_budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "leap-budget" ] ~docv:"N" ~doc:"Per-session LEAP LMAD budget override.")
  in
  let max_streams =
    Arg.(
      value & opt int 0
      & info [ "max-streams" ] ~docv:"N"
          ~doc:"Per-session cap on LEAP streams (0 = unlimited).")
  in
  let stats_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats-file" ] ~docv:"PATH"
          ~doc:
            "Also export the live stats snapshot to PATH as JSON (atomic rename) at \
             heartbeat cadence — the scrape-friendly twin of $(b,ormp top).")
  in
  let no_stats =
    Arg.(
      value & flag
      & info [ "no-stats" ]
          ~doc:
            "Do not enable the telemetry registry; Stats requests are still answered \
             but carry only the select loop's own gauges. For overhead measurement.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the profiling daemon: many concurrent sessions over one Unix socket, each \
          journaled and crash-recoverable, with overload shedding and graceful drain on \
          SIGTERM")
    Term.(
      const run $ socket_arg $ root $ jobs_arg $ max_sessions $ grammar_budget
      $ max_occupancy $ idle_timeout $ frame_timeout $ ping_every $ heartbeat_every
      $ retry_after $ leap_budget $ max_streams $ stats_file $ no_stats $ quiet_arg)

let client_cmd =
  let run workload socket token seed sessions ack_every attempts timeout torn_frame
      disconnect_before slow_frame dup_retry reference quiet =
    apply_quiet quiet;
    if sessions < 1 then Exit_codes.usagef "--sessions must be at least 1 (got %d)" sessions;
    if ack_every < 1 then Exit_codes.usagef "--ack-every must be at least 1 (got %d)" ack_every;
    if attempts < 1 then Exit_codes.usagef "--attempts must be at least 1 (got %d)" attempts;
    if timeout <= 0.0 then Exit_codes.usagef "--timeout must be positive (got %g)" timeout;
    List.iter
      (fun (name, v) ->
        match v with
        | Some n when n < 1 -> Exit_codes.usagef "--%s must be at least 1 (got %d)" name n
        | _ -> ())
      [
        ("torn-frame", torn_frame);
        ("disconnect-before", disconnect_before);
        ("slow-frame", slow_frame);
        ("dup-retry", dup_retry);
      ];
    match Client.generate ~workload ~seed with
    | Error msg -> Exit_codes.usagef "%s" msg
    | Ok (events, n) ->
      Printf.printf "generated %d events from %s (seed %d)\n%!" n workload seed;
      (match reference with
      | Some dir ->
        Client.reference ~dir ~events;
        Printf.printf "reference profiles written to %s\n" dir
      | None -> ());
      let plan = { Net_fault.torn_frame; disconnect_before; slow_frame; dup_retry } in
      let t0 = Ormp_util.Clock.now_s () in
      let failed = ref 0 in
      let latencies = ref [] in
      let frames = ref 0 and reconnects = ref 0 and sheds = ref 0 in
      for i = 0 to sessions - 1 do
        let tok = if sessions = 1 then token else Printf.sprintf "%s-%d" token i in
        let retry = { Client.default_retry with Client.attempts; seed = 0x5eed + i } in
        match
          Client.run_session ~socket ~token:tok ~workload ~events ~ack_every ~retry
            ~net:(Net_fault.create plan) ~io_timeout_s:timeout ()
        with
        | Ok st ->
          frames := !frames + st.Client.st_frames;
          reconnects := !reconnects + st.Client.st_reconnects;
          sheds := !sheds + st.Client.st_sheds;
          latencies := st.Client.st_ack_latencies @ !latencies;
          Printf.printf "  %-24s ok      %6d frames, %4d acks, %d reconnects, %d sheds, %.3fs\n%!"
            tok st.Client.st_frames st.Client.st_acks st.Client.st_reconnects
            st.Client.st_sheds st.Client.st_wall_s
        | Error msg ->
          incr failed;
          Printf.printf "  %-24s FAILED  %s\n%!" tok msg
      done;
      let wall = Ormp_util.Clock.now_s () -. t0 in
      Printf.printf "client: %d session(s) in %.3fs (%.1f sessions/sec)\n"
        sessions wall
        (if wall > 0.0 then float_of_int sessions /. wall else 0.0);
      Printf.printf "  frames %d, reconnects %d, sheds %d, ack p50 %.2fms p99 %.2fms\n"
        !frames !reconnects !sheds
        (1000.0 *. Client.percentile !latencies 0.50)
        (1000.0 *. Client.percentile !latencies 0.99);
      if !failed > 0 then Exit_codes.exit_findings ()
  in
  let token =
    Arg.(
      value & opt string "client"
      & info [ "token" ] ~docv:"TOKEN"
          ~doc:
            "Session token; resume-after-crash identity, and the daemon-side directory \
             name. With --sessions N the tokens are TOKEN-0 .. TOKEN-(N-1).")
  in
  let sessions =
    Arg.(
      value & opt int 1
      & info [ "sessions" ] ~docv:"N"
          ~doc:"Stream the generated events N times as N distinct sequential sessions.")
  in
  let ack_every =
    Arg.(
      value & opt int 4
      & info [ "ack-every" ] ~docv:"N"
          ~doc:"Ask the daemon to flush and acknowledge every N data frames.")
  in
  let attempts =
    Arg.(
      value & opt int Client.default_retry.Client.attempts
      & info [ "attempts" ] ~docv:"N"
          ~doc:"Connection attempts per session before giving up (exponential backoff).")
  in
  let timeout =
    Arg.(
      value & opt float 10.0
      & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Per-operation I/O deadline.")
  in
  let fault name doc =
    Arg.(value & opt (some int) None & info [ name ] ~docv:"N" ~doc)
  in
  let torn_frame =
    fault "torn-frame" "Fault injection: send half of the Nth data frame, then drop the \
                        connection."
  in
  let disconnect_before =
    fault "disconnect-before" "Fault injection: drop the connection instead of sending \
                               the Nth data frame."
  in
  let slow_frame =
    fault "slow-frame" "Fault injection: dribble the Nth data frame out in tiny delayed \
                        chunks."
  in
  let dup_retry =
    fault "dup-retry" "Fault injection: on the first resumed reconnect, rewind the send \
                       position by N events past the acknowledged point (the daemon must \
                       deduplicate)."
  in
  let reference =
    Arg.(
      value
      & opt (some string) None
      & info [ "reference" ] ~docv:"DIR"
          ~doc:
            "Also run the identical profiling pipeline locally and write the three \
             profile files to DIR — the byte-comparison baseline for the daemon's \
             session directory.")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Stream a workload's events to an $(b,ormp serve) daemon, surviving shedding, \
          injected wire faults and daemon restarts; reports sessions/sec and ack latency")
    Term.(
      const run $ workload_arg $ socket_arg $ token $ seed_arg $ sessions $ ack_every
      $ attempts $ timeout $ torn_frame $ disconnect_before $ slow_frame $ dup_retry
      $ reference $ quiet_arg)

(* --- stats ------------------------------------------------------------ *)

let stats_cmd =
  let run dir check quiet =
    apply_quiet quiet;
    let module J = Ormp_util.Json in
    let ( // ) = Filename.concat in
    let failed = ref false in
    let problem fmt =
      Printf.ksprintf
        (fun m ->
          Printf.eprintf "%s\n" m;
          failed := true)
        fmt
    in
    let load_json path =
      if not (Sys.file_exists path) then begin
        problem "%s: missing" path;
        None
      end
      else
        match J.of_string (read_file path) with
        | Ok j -> Some j
        | Error msg ->
          problem "%s: %s" path msg;
          None
    in
    (match load_json (dir // Telemetry.metrics_json_file) with
    | None -> ()
    | Some j ->
      let obj name = match J.member name j with Some (J.Obj fields) -> fields | _ -> [] in
      let num v =
        match J.to_float v with Some f -> Printf.sprintf "%.6g" f | None -> "?"
      in
      (match obj "counters" with
      | [] -> ()
      | counters ->
        print_endline (Ormp_util.Ascii.section "counters");
        print_endline
          (Ormp_util.Ascii.table ~header:[ "counter"; "value" ]
             ~rows:(List.map (fun (n, v) -> [ n; num v ]) counters)));
      (match obj "gauges" with
      | [] -> ()
      | gauges ->
        print_endline (Ormp_util.Ascii.section "gauges");
        print_endline
          (Ormp_util.Ascii.table ~header:[ "gauge"; "value" ]
             ~rows:(List.map (fun (n, v) -> [ n; num v ]) gauges)));
      match obj "histograms" with
      | [] -> ()
      | hists ->
        let module M = Ormp_telemetry.Metrics in
        let hrow (n, v) =
          match M.hist_summary_of_json v with
          | Some h -> M.hist_row n h
          | None -> [ n; "?" ]
        in
        print_endline (Ormp_util.Ascii.section "histograms");
        print_endline
          (Ormp_util.Ascii.table ~header:M.hist_header ~rows:(List.map hrow hists)));
    (* The s-expression snapshot must stay loadable too — it is the form
       other tooling in this repo consumes. *)
    let sexp_path = dir // Telemetry.metrics_sexp_file in
    (if Sys.file_exists sexp_path then
       match Ormp_util.Sexp.load sexp_path with
       | Ok _ -> ()
       | Error msg -> problem "%s: %s" sexp_path msg
     else problem "%s: missing" sexp_path);
    (match load_json (dir // Telemetry.trace_file) with
    | None -> ()
    | Some j -> (
      match Ormp_telemetry.Spans.validate_json j with
      | Ok n -> Printf.printf "trace    : %d complete spans, nesting OK\n" n
      | Error msg -> problem "%s: invalid trace: %s" (dir // Telemetry.trace_file) msg));
    (let hb_path = dir // Session.heartbeat_file in
     if Sys.file_exists hb_path then
       match Ormp_telemetry.Heartbeat.load hb_path with
       | [] -> ()
       | samples ->
         Printf.printf "heartbeat: %d samples, last:\n" (List.length samples);
         print_heartbeat_sample (List.nth samples (List.length samples - 1)));
    if check && !failed then Exit_codes.exit_findings ()
  in
  let dir =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DIR"
          ~doc:"A telemetry directory written by a $(b,--telemetry) run.")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Exit 1 unless the metrics files parse and every span in the trace is \
             strictly nested (B/E pairs match per thread, LIFO).")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Pretty-print (and validate) the telemetry reports of a --telemetry run")
    Term.(const run $ dir $ check $ quiet_arg)

(* --- top -------------------------------------------------------------- *)

let top_cmd =
  let module Stats = Ormp_server.Stats in
  let run socket interval once timeout quiet =
    apply_quiet quiet;
    if interval <= 0.0 then Exit_codes.usagef "--interval must be positive (got %g)" interval;
    if timeout <= 0.0 then Exit_codes.usagef "--timeout must be positive (got %g)" timeout;
    let fetch () = Client.fetch_stats ~socket ~io_timeout_s:timeout () in
    if once then
      match fetch () with
      | Ok s -> print_string (Stats.render s)
      | Error e -> Exit_codes.findingsf "cannot fetch stats from %s: %s" socket e
    else begin
      let failures = ref 0 in
      while true do
        (match fetch () with
        | Ok s ->
          failures := 0;
          (* Clear + home, the watch(1) idiom, so the tables repaint in
             place instead of scrolling. *)
          print_string "\x1b[2J\x1b[H";
          Printf.printf "ormp top — %s — every %.1fs (ctrl-c to quit)\n\n" socket interval;
          print_string (Stats.render s);
          flush stdout
        | Error e ->
          incr failures;
          Printf.eprintf "ormp top: %s\n%!" e;
          (* A restarting daemon deserves patience; a gone one does not. *)
          if !failures >= 5 then
            Exit_codes.findingsf "cannot fetch stats from %s after %d attempts" socket
              !failures);
        Ormp_server.Net_io.sleep interval
      done
    end
  in
  let socket =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SOCKET" ~doc:"Unix-domain socket of a running $(b,ormp serve).")
  in
  let interval =
    Arg.(
      value & opt float 1.0
      & info [ "interval"; "n" ] ~docv:"SECONDS" ~doc:"Refresh cadence.")
  in
  let once =
    Arg.(
      value & flag
      & info [ "once" ] ~doc:"Print a single snapshot and exit (no screen clearing).")
  in
  let timeout =
    Arg.(
      value & opt float 5.0
      & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Per-fetch I/O deadline.")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live view of a running $(b,ormp serve): daemon gauges, per-session rows \
          (position, events/s, ack latency, ring occupancy, journal lag) and the \
          telemetry registry, refreshed in place")
    Term.(const run $ socket $ interval $ once $ timeout $ quiet_arg)

let () =
  let doc = "object-relative memory profiling (WHOMP/LEAP, CGO 2004)" in
  let info = Cmd.info "ormp" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; trace_cmd; whomp_cmd; leap_cmd; compare_cmd; check_cmd; lint_cmd; modelcheck_cmd; post_cmd; analyze_cmd; record_cmd; replay_cmd; session_cmd; serve_cmd; client_cmd; stats_cmd; top_cmd ]))
