(* The ormp CLI exit-code contract, in one place.

   Every subcommand exits through these values so that scripts (and the
   smoke rules in bin/dune) can rely on one stable meaning per code:

     0  ok             the run completed and found nothing wrong
     1  findings       the run completed but reported findings or failed
                       at runtime (dirty sanitizer report, invalid
                       profile, lint errors, litmus violation, session
                       error, exhausted client retry budget)
     2  usage          the invocation itself was wrong (unknown
                       workload, bad flag value, conflicting options)
     9  injected_kill  an injected durability fault killed the process
                       on purpose; the session on disk remains resumable

   Argument-syntax errors caught by cmdliner itself (unknown flags,
   unparseable values) exit with cmdliner's own code 124 before any
   subcommand runs; the contract above covers ormp's own decisions. *)

let ok = 0
let findings = 1
let usage = 2
let injected_kill = 9

let exit_findings () : 'a = exit findings
let exit_usage () : 'a = exit usage
let exit_injected_kill () : 'a = exit injected_kill

(* Print one diagnostic line to stderr, then exit with the given
   meaning — the common shape of almost every early-exit in the CLI. *)

let findingsf fmt =
  Printf.ksprintf
    (fun m ->
      Printf.eprintf "%s\n" m;
      exit_findings ())
    fmt

let usagef fmt =
  Printf.ksprintf
    (fun m ->
      Printf.eprintf "%s\n" m;
      exit_usage ())
    fmt
